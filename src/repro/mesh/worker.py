"""A measurement worker process for the mesh.

Each worker is a *whole measurement cell*: it builds its own seeded
world (stores, IPC fleet, sheriff with the pipelined engine) and serves
``check_price`` calls over the socket transport.  The parent launcher
farms a workload's checks across N such processes — the multi-core
scale-out the single-process sim cannot give — and each check runs the
exact same engine code the Tier-1 suite proves row-identical.

Run directly (the launcher does this)::

    python -m repro.mesh.worker --name w0 --seed 2017 --stores 4 \
        --servers 2 --ipcs 10 --users 8

prints ``MESH-READY name=w0 port=<p> pid=<pid>`` once serving, then
blocks until SIGTERM (graceful drain) or a ``mesh.shutdown`` call.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
from typing import Any, Dict, List

from repro.clients.ipc import DEFAULT_IPC_SITES
from repro.core.sheriff import PriceSheriff, SheriffWorld
from repro.mesh.service import MeshService
from repro.net.socket_transport import SocketTransport
from repro.workloads.stores import build_named_stores, uniform_store_specs

__all__ = ["MeasurementWorker", "main"]

#: countries worker users rotate through (same roster as the
#: throughput workload, so mesh checks exercise the same geography)
USER_COUNTRIES = ("ES", "US", "GB", "DE", "FR", "JP", "CA", "IT")


class MeasurementWorker:
    """One worker cell: seeded world + sheriff + addon roster."""

    def __init__(
        self,
        name: str,
        seed: int = 2017,
        n_stores: int = 4,
        n_servers: int = 2,
        n_ipcs: int = 10,
        n_users: int = 8,
        max_fetch_workers: int = 16,
        page_cache_ttl: float = 30.0,
    ) -> None:
        self.name = name
        self.world = SheriffWorld.create(seed=seed)
        specs = uniform_store_specs(n_stores, seed=seed + 3)
        stores = build_named_stores(self.world, specs)
        self.sheriff = PriceSheriff(
            self.world,
            n_measurement_servers=n_servers,
            ipc_sites=DEFAULT_IPC_SITES[:n_ipcs],
            dispatch_policy="round_robin",
            pipelined=True,
            max_fetch_workers=max_fetch_workers,
            page_cache_ttl=page_cache_ttl,
        )
        self.urls: List[str] = []
        for spec in specs:
            store = stores[spec.domain]
            for product in store.catalog.products:
                self.urls.append(store.product_url(product.product_id))
        rng = random.Random(seed + 97)
        del rng  # reserved for future per-worker jitter; keep draws stable
        self.addons = [
            self.sheriff.install_addon(
                self.world.make_browser(USER_COUNTRIES[i % len(USER_COUNTRIES)])
            )
            for i in range(n_users)
        ]
        self.checks_done = 0
        self.rows_total = 0
        self.service = MeshService(
            name,
            methods={
                "check_price": self.check_price,
                "stats": self.stats,
            },
        )

    # -- RPC methods --------------------------------------------------------
    def check_price(self, payload: Any) -> Dict[str, Any]:
        """Run one price check; payload: {"index": i, "user": u?}."""
        payload = payload or {}
        index = int(payload.get("index", 0))
        user = int(payload.get("user", index)) % len(self.addons)
        url = self.urls[index % len(self.urls)]
        addon = self.addons[user]
        pending = addon.submit_price_check(url)
        result = addon.collect(pending)
        self.checks_done += 1
        self.rows_total += len(result.rows)
        digest = hashlib.sha256(
            json.dumps(
                [[row.proxy_id, row.original_text, row.amount_eur]
                 for row in result.rows],
                sort_keys=True,
            ).encode()
        ).hexdigest()[:16]
        return {
            "worker": self.name,
            "url": url,
            "rows": len(result.rows),
            "digest": digest,
        }

    def stats(self, payload: Any) -> Dict[str, Any]:
        return {
            "worker": self.name,
            "checks": self.checks_done,
            "rows": self.rows_total,
            "batched_writes": self.sheriff.db.batched_writes,
        }

    # -- lifecycle ----------------------------------------------------------
    def serve_forever(self, transport: SocketTransport, announce: bool = True) -> None:
        self.service.install_signal_handlers()
        self.service.serve(transport, announce=announce)
        self.service.wait()
        self.service.shutdown()
        self.sheriff.shutdown()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.mesh.worker",
        description="One mesh measurement worker process (internal).",
    )
    parser.add_argument("--name", required=True)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--stores", type=int, default=4)
    parser.add_argument("--servers", type=int, default=2)
    parser.add_argument("--ipcs", type=int, default=10)
    parser.add_argument("--users", type=int, default=8)
    parser.add_argument("--fetch-workers", type=int, default=16)
    parser.add_argument("--cache-ttl", type=float, default=30.0)
    args = parser.parse_args(argv)
    worker = MeasurementWorker(
        name=args.name,
        seed=args.seed,
        n_stores=args.stores,
        n_servers=args.servers,
        n_ipcs=args.ipcs,
        n_users=args.users,
        max_fetch_workers=args.fetch_workers,
        page_cache_ttl=args.cache_ttl,
    )
    worker.serve_forever(SocketTransport())
    return 0


if __name__ == "__main__":
    sys.exit(main())
