"""The mesh launcher: spawn, handshake, drive, and drain worker processes.

:class:`MeshLauncher` is the parent side of the mesh.  It spawns N
:mod:`repro.mesh.worker` processes with ``sys.executable``, waits for
each one's ``MESH-READY`` line, verifies the protocol handshake, and
then exposes the fleet through one :class:`SocketTransport` client.
``run_checks`` farms a workload across the fleet from a thread pool and
measures **wall-clock** throughput — real processes, real sockets, real
cores, the honest number the sim cannot produce.

Shutdown is graceful by default: ``mesh.drain`` to every worker, then
SIGTERM (the workers' signal handler finishes in-flight work and exits
0), escalating to kill only on timeout.
"""

from __future__ import annotations

import concurrent.futures
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.net.protocol import PROTOCOL_VERSION
from repro.net.sim import NetworkError
from repro.net.socket_transport import SocketTransport

__all__ = ["MeshLauncher", "MeshReport", "WorkerSpec"]

#: how long to wait for a worker's ready line (it builds a whole world)
READY_TIMEOUT_S = 90.0


@dataclass
class WorkerSpec:
    """The workload shape every worker process builds."""

    seed: int = 2017
    n_stores: int = 4
    n_servers: int = 2
    n_ipcs: int = 10
    n_users: int = 8
    max_fetch_workers: int = 16
    page_cache_ttl: float = 30.0

    def argv(self, name: str) -> List[str]:
        return [
            sys.executable, "-m", "repro.mesh.worker",
            "--name", name,
            "--seed", str(self.seed),
            "--stores", str(self.n_stores),
            "--servers", str(self.n_servers),
            "--ipcs", str(self.n_ipcs),
            "--users", str(self.n_users),
            "--fetch-workers", str(self.max_fetch_workers),
            "--cache-ttl", str(self.page_cache_ttl),
        ]


@dataclass
class MeshReport:
    """What one mesh run measured (the BENCH entry payload)."""

    workers: int
    checks_requested: int
    checks_completed: int
    rows: int
    wall_s: float
    checks_per_sec_wall: float
    failures: int = 0
    per_worker: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def completed_fraction(self) -> float:
        if self.checks_requested == 0:
            return 1.0
        return self.checks_completed / self.checks_requested

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": "mesh",
            "workers": self.workers,
            "checks_requested": self.checks_requested,
            "checks_completed": self.checks_completed,
            "completed_fraction": round(self.completed_fraction, 4),
            "rows": self.rows,
            "wall_s": round(self.wall_s, 3),
            "checks_per_sec_wall": round(self.checks_per_sec_wall, 3),
            "failures": self.failures,
            "per_worker": self.per_worker,
        }


class _WorkerProc:
    def __init__(self, name: str, proc: subprocess.Popen) -> None:
        self.name = name
        self.proc = proc
        self.port: Optional[int] = None
        self.hello: Optional[Dict[str, Any]] = None


class MeshLauncher:
    """Parent-side control plane for a fleet of worker processes."""

    CLIENT = "mesh-launcher"

    def __init__(
        self,
        n_workers: int = 2,
        spec: Optional[WorkerSpec] = None,
        call_timeout: float = 60.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.spec = spec if spec is not None else WorkerSpec()
        self.call_timeout = call_timeout
        self.transport = SocketTransport(call_timeout=call_timeout)
        self.transport.register_client(self.CLIENT)
        self.workers: List[_WorkerProc] = []
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> List[Dict[str, Any]]:
        """Spawn the fleet; return each worker's handshake response."""
        env = os.environ.copy()
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        parts = [src_dir] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        for i in range(self.n_workers):
            name = f"w{i}"
            proc = subprocess.Popen(
                self.spec.argv(name),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            self.workers.append(_WorkerProc(name, proc))
        hellos = []
        for worker in self.workers:
            self._await_ready(worker)
            self.transport.connect_peer(worker.name, "127.0.0.1", worker.port)
            worker.hello = self.transport.call(
                self.CLIENT, worker.name, "mesh.hello",
                {"protocol": PROTOCOL_VERSION},
            )
            hellos.append(worker.hello)
        return hellos

    def _await_ready(self, worker: _WorkerProc) -> None:
        deadline = time.monotonic() + READY_TIMEOUT_S
        while True:
            if worker.proc.poll() is not None:
                err = (worker.proc.stderr.read() or "")[-2000:]
                raise NetworkError(
                    f"worker {worker.name} exited rc={worker.proc.returncode} "
                    f"before ready: {err}"
                )
            line = worker.proc.stdout.readline()
            if not line:
                if time.monotonic() > deadline:
                    raise NetworkError(f"worker {worker.name} never became ready")
                continue
            if line.startswith("MESH-READY"):
                fields = dict(
                    part.split("=", 1) for part in line.split()[1:] if "=" in part
                )
                worker.port = int(fields["port"])
                return
            if time.monotonic() > deadline:
                raise NetworkError(f"worker {worker.name} never became ready")

    def heartbeat(self) -> Dict[str, Any]:
        """Ping every worker; raises NetworkError if one is gone."""
        return {
            w.name: self.transport.call(self.CLIENT, w.name, "mesh.ping", {})
            for w in self.workers
        }

    # -- the workload -------------------------------------------------------
    def run_checks(
        self, total: int, concurrency: Optional[int] = None
    ) -> MeshReport:
        """Farm ``total`` checks across the fleet; measure wall clock."""
        if not self.workers:
            raise NetworkError("mesh not started")
        concurrency = concurrency or min(total, 4 * len(self.workers)) or 1
        results: List[Optional[Dict[str, Any]]] = [None] * total
        failures = 0

        def one(i: int) -> None:
            worker = self.workers[i % len(self.workers)]
            results[i] = self.transport.call(
                self.CLIENT, worker.name, "check_price", {"index": i},
                timeout=self.call_timeout,
            )

        started = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(max_workers=concurrency) as pool:
            futures = [pool.submit(one, i) for i in range(total)]
            for fut in concurrent.futures.as_completed(futures):
                if fut.exception() is not None:
                    failures += 1
        wall = max(time.perf_counter() - started, 1e-9)
        completed = [r for r in results if r is not None]
        per_worker = []
        for worker in self.workers:
            try:
                per_worker.append(
                    self.transport.call(self.CLIENT, worker.name, "stats", {})
                )
            except NetworkError:
                per_worker.append({"worker": worker.name, "error": "unreachable"})
        return MeshReport(
            workers=len(self.workers),
            checks_requested=total,
            checks_completed=len(completed),
            rows=sum(r["rows"] for r in completed),
            wall_s=wall,
            checks_per_sec_wall=len(completed) / wall,
            failures=failures,
            per_worker=per_worker,
        )

    # -- shutdown -----------------------------------------------------------
    def shutdown(self, graceful: bool = True, timeout: float = 15.0) -> Dict[str, int]:
        """Drain + SIGTERM the fleet; kill stragglers; return exit codes."""
        codes: Dict[str, int] = {}
        if graceful:
            for worker in self.workers:
                try:
                    self.transport.call(
                        self.CLIENT, worker.name, "mesh.drain", {}, timeout=5.0
                    )
                except NetworkError:
                    pass
        for worker in self.workers:
            if worker.proc.poll() is None:
                worker.proc.terminate()
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                worker.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait(timeout=5.0)
            codes[worker.name] = worker.proc.returncode
            for stream in (worker.proc.stdout, worker.proc.stderr):
                if stream is not None:
                    stream.close()
        self.transport.close()
        return codes

    def __enter__(self) -> "MeshLauncher":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(graceful=exc_type is None)
