"""Price $heriff — a watchdog service for e-commerce price discrimination.

A faithful, fully self-contained Python reproduction of

    Iordanou, Soriente, Sirivianos, Laoutaris.
    "Who is Fiddling with Prices? Building and Deploying a Watchdog
    Service for E-commerce." SIGCOMM 2017.

The package provides the complete system — browser add-on, Coordinator,
Measurement servers, Database server, IPC/PPC proxy network, Aggregator,
doppelgangers, and the privacy-preserving k-means protocol — plus the
simulated substrates the real deployment ran against (an e-commerce web
with configurable pricing policies, browsers with cookies/history/
sandboxing, a tracker ecosystem, synthetic geography) and the analysis
and workload machinery that regenerates every table and figure of the
paper's evaluation.

Quick start::

    from repro import PriceSheriff, SheriffWorld

    world = SheriffWorld.create(seed=42)
    # ...register stores on world.internet...
    sheriff = PriceSheriff(world)
    addon = sheriff.install_addon(world.make_browser("ES", "Madrid"))
    result = addon.check_price("http://store.example/product/p-1")
    print(result.render_result_page())

See ``examples/`` for runnable walkthroughs and ``benchmarks/`` for the
per-table/figure reproduction harnesses.
"""

from repro.core.sheriff import PriceSheriff, SheriffWorld
from repro.core.addon import SheriffAddon
from repro.core.database import DatabaseServer
from repro.core.engine import PriceCheckEngine
from repro.core.errors import InvalidConfig, JobDeadLettered, QueueSaturated
from repro.core.jobapi import JobAPI, SheriffJobs
from repro.core.jobqueue import QueuedMeasurementTier
from repro.core.measurement import JobHandle, MeasurementServer, PriceCheckJob
from repro.core.pricecheck import PriceCheckResult, ResultRow
from repro.core.detector import PriceVariationReport, analyze_rows
from repro.core.watchdog import WatchAlert, Watchdog
from repro.obs import Telemetry
from repro.ops import (
    AuditTrail,
    KillSwitch,
    LogNotifier,
    Notifier,
    OpsEvent,
    RestartPolicy,
    Supervisor,
    build_supervisor,
)
from repro.storage import (
    MemoryBackend,
    ShardedDatabase,
    SqliteBackend,
    StorageBackend,
    make_backend,
)
from repro.workloads.deployment import DeploymentConfig, LiveDeployment

#: ``Sheriff`` is the blessed short name for the deployment facade.
Sheriff = PriceSheriff

__version__ = "1.0.0"

__all__ = [
    # deployment facade
    "PriceSheriff",
    "Sheriff",
    "SheriffWorld",
    "SheriffAddon",
    # job lifecycle (the JobAPI protocol and its implementations)
    "JobAPI",
    "SheriffJobs",
    "MeasurementServer",
    "PriceCheckJob",
    "JobHandle",
    "PriceCheckEngine",
    "QueuedMeasurementTier",
    "QueueSaturated",
    "JobDeadLettered",
    "InvalidConfig",
    # results and analysis
    "PriceCheckResult",
    "ResultRow",
    "PriceVariationReport",
    "analyze_rows",
    # storage layer
    "DatabaseServer",
    "ShardedDatabase",
    "StorageBackend",
    "MemoryBackend",
    "SqliteBackend",
    "make_backend",
    # observability
    "Telemetry",
    # the price watchdog (Sect. 6): watches *products*
    "Watchdog",
    "WatchAlert",
    # the operations layer: watches *the service itself*
    "Supervisor",
    "build_supervisor",
    "RestartPolicy",
    "KillSwitch",
    "AuditTrail",
    "OpsEvent",
    "Notifier",
    "LogNotifier",
    # deployment builders
    "DeploymentConfig",
    "LiveDeployment",
    "__version__",
]
