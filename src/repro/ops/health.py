"""Health probes: how the supervisor decides a component is alive.

Each probe answers one narrow question against live deployment state —
is this Measurement server heartbeating, is this engine queue bounded,
is this DB shard still taking writes, is the error rate spiking, are
the doppelgangers polluted past their budget.  Probes are **read-only
and RNG-free**: they may inspect clocks, metrics, and component state,
but they never consume a seeded RNG stream or advance simulated time,
so supervising a run cannot perturb its rows (the restart-equivalence
property the ops tests pin down).

In particular :class:`HeartbeatProbe` reads
:meth:`repro.net.faults.FaultPlan.flapping_hosts` — the RNG-free view
of the flap table — never :meth:`~repro.net.faults.FaultPlan.host_down`,
which gives flap rules a fresh random draw on every call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "CallableProbe",
    "DeadLetterProbe",
    "ErrorRateProbe",
    "HeartbeatProbe",
    "JobQueueBacklogProbe",
    "PollutionBudgetProbe",
    "ProbeResult",
    "QueueDepthProbe",
    "ShardStalenessProbe",
]


@dataclass(frozen=True)
class ProbeResult:
    """One probe verdict: healthy or not, with the observed value."""

    healthy: bool
    reason: str = ""
    value: float = 0.0

    def __bool__(self) -> bool:
        return self.healthy


OK = ProbeResult(healthy=True)


class HeartbeatProbe:
    """Is the Measurement server online and outside any flap window?

    Combines the distributor's view (heartbeat-expired servers are
    marked offline) with the fault plan's flap table, so a server that
    just entered a flap window reads as down *before* the heartbeat
    timeout elapses — detection latency is one supervisor tick, not one
    timeout.
    """

    def __init__(self, distributor, name: str, faults=None) -> None:
        self.distributor = distributor
        self.name = name
        self.faults = faults

    def check(self, now: float) -> ProbeResult:
        record = self.distributor.server(self.name)
        if not record.online:
            return ProbeResult(False, "heartbeat expired", 0.0)
        if self.faults is not None and self.name in self.faults.flapping_hosts(now):
            return ProbeResult(False, "host flapping", 0.0)
        return OK


class QueueDepthProbe:
    """Is the server's engine fetch queue bounded?

    A queue deeper than ``max_queued`` means fetch tasks are piling up
    faster than the worker pool drains them — the Table-1 saturation
    regime.  The heal action for this probe is a drain, not a restart.
    """

    def __init__(self, engine, server_name: str, max_queued: int = 64) -> None:
        self.engine = engine
        self.server_name = server_name
        self.max_queued = max_queued

    def check(self, now: float) -> ProbeResult:
        depth = self.engine.pool_for(self.server_name).queued
        if depth > self.max_queued:
            return ProbeResult(
                False, f"queue depth {depth} > {self.max_queued}", float(depth)
            )
        return ProbeResult(True, value=float(depth))


class ErrorRateProbe:
    """Is a cumulative error counter growing faster than allowed?

    ``sample`` returns the counter's current cumulative value (e.g.
    ``lambda: coordinator.jobs_failed``, or a ``repro.obs`` counter
    read).  Each check measures the delta since the previous check —
    a per-tick window — and flags when it exceeds ``max_delta``.
    The first check only establishes the baseline.
    """

    def __init__(
        self, sample: Callable[[], float], max_delta: float, name: str = "errors"
    ) -> None:
        self.sample = sample
        self.max_delta = max_delta
        self.name = name
        self._last: Optional[float] = None

    def check(self, now: float) -> ProbeResult:
        current = float(self.sample())
        previous, self._last = self._last, current
        if previous is None:
            return ProbeResult(True, value=0.0)
        delta = current - previous
        if delta > self.max_delta:
            return ProbeResult(
                False,
                f"{self.name} rate spike: +{delta:g} > {self.max_delta:g} per tick",
                delta,
            )
        return ProbeResult(True, value=delta)


class ShardStalenessProbe:
    """Has this DB shard taken a write recently enough?

    Staleness is measured against the shard's ``last_write_time`` —
    stamped from the rows' own ``time`` fields, so the probe needs no
    clock plumbing into the storage layer.  A shard that has never been
    written is healthy: an empty deployment is not a failing one.
    """

    def __init__(self, db, shard_name: str, max_age: float = 3600.0) -> None:
        self.db = db
        self.shard_name = shard_name
        self.max_age = max_age

    def check(self, now: float) -> ProbeResult:
        last = self.db.shard_last_writes().get(self.shard_name)
        if last is None:
            return OK
        age = now - last
        if age > self.max_age:
            return ProbeResult(
                False, f"no write for {age:g}s > {self.max_age:g}s", age
            )
        return ProbeResult(True, value=age)


class PollutionBudgetProbe:
    """Are too many doppelgangers saturated past their pollution budget?

    Reads :meth:`repro.profiles.doppelganger.Doppelganger.saturated_fraction`
    over the whole fleet; blowing past ``max_fraction`` means served
    profiles no longer look like their clusters — an anomaly worth a
    kill-switch, since continuing to serve them pollutes measurements.
    """

    def __init__(self, dopp_manager, max_fraction: float = 0.5) -> None:
        self.dopp_manager = dopp_manager
        self.max_fraction = max_fraction

    def check(self, now: float) -> ProbeResult:
        dopps = self.dopp_manager.doppelgangers()
        if not dopps:
            return OK
        saturated = sum(1 for d in dopps if d.needs_regeneration())
        fraction = saturated / len(dopps)
        if fraction > self.max_fraction:
            return ProbeResult(
                False,
                f"{saturated}/{len(dopps)} doppelgangers saturated "
                f"(> {self.max_fraction:.0%})",
                fraction,
            )
        return ProbeResult(True, value=fraction)


class JobQueueBacklogProbe:
    """Is the queued measurement tier's outbox near its admission limit?

    Reads the tier's current depth against ``max_depth``; a sustained
    backlog above ``max_fraction`` of the limit means admission control
    is about to start shedding — worth an alert *before* clients see
    :class:`~repro.core.errors.QueueSaturated`.  Alert-only: the queue
    drains itself on the next poll, there is nothing to restart.
    """

    def __init__(self, tier, max_fraction: float = 0.9) -> None:
        self.tier = tier
        self.max_fraction = max_fraction

    def check(self, now: float) -> ProbeResult:
        depth = self.tier.queue.depth
        limit = self.tier.max_depth
        fraction = depth / limit if limit else 0.0
        if fraction > self.max_fraction:
            return ProbeResult(
                False,
                f"queue backlog {depth}/{limit} (> {self.max_fraction:.0%})",
                fraction,
            )
        return ProbeResult(True, value=fraction)


class DeadLetterProbe:
    """Did the queue tier dead-letter any jobs since the last check?

    Delta-style like :class:`ErrorRateProbe`: each check compares the
    dead-letter store's size against the previous tick and flags any
    growth beyond ``max_delta``.  The first check only establishes the
    baseline.  Dead letters are terminal — every one is a job whose
    retry budget ran dry — so the default tolerance is zero.
    """

    def __init__(self, tier, max_delta: float = 0.0) -> None:
        self.tier = tier
        self.max_delta = max_delta
        self._last: Optional[int] = None

    def check(self, now: float) -> ProbeResult:
        current = len(self.tier.dead_letters)
        previous, self._last = self._last, current
        if previous is None:
            return ProbeResult(True, value=0.0)
        delta = current - previous
        if delta > self.max_delta:
            return ProbeResult(
                False,
                f"{delta} new dead-lettered job(s) this tick",
                float(delta),
            )
        return ProbeResult(True, value=float(delta))


class CallableProbe:
    """Adapts ``fn(now) -> bool | ProbeResult`` into a probe."""

    def __init__(self, fn: Callable[[float], object], name: str = "probe") -> None:
        self.fn = fn
        self.name = name

    def check(self, now: float) -> ProbeResult:
        verdict = self.fn(now)
        if isinstance(verdict, ProbeResult):
            return verdict
        return OK if verdict else ProbeResult(False, f"{self.name} failed")
