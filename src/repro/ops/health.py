"""Health probes: how the supervisor decides a component is alive.

Each probe answers one narrow question against live deployment state —
is this Measurement server heartbeating, is this engine queue bounded,
is this DB shard still taking writes, is the error rate spiking, are
the doppelgangers polluted past their budget.  Probes are **read-only
and RNG-free**: they may inspect clocks, metrics, and component state,
but they never consume a seeded RNG stream or advance simulated time,
so supervising a run cannot perturb its rows (the restart-equivalence
property the ops tests pin down).

In particular :class:`HeartbeatProbe` reads
:meth:`repro.net.faults.FaultPlan.flapping_hosts` — the RNG-free view
of the flap table — never :meth:`~repro.net.faults.FaultPlan.host_down`,
which gives flap rules a fresh random draw on every call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = [
    "CallableProbe",
    "DeadLetterProbe",
    "ErrorRateProbe",
    "HeartbeatProbe",
    "JobQueueBacklogProbe",
    "PollutionBudgetProbe",
    "ProbeResult",
    "QueueDepthProbe",
    "SLOBurnRateProbe",
    "ShardStalenessProbe",
]


@dataclass(frozen=True)
class ProbeResult:
    """One probe verdict: healthy or not, with the observed value.

    ``metrics`` is the probe's snapshot of the numbers behind the
    verdict (queue depth, error delta, burn rate …) — the audit trail
    copies it onto the alert event so the JSONL is self-explanatory.
    """

    healthy: bool
    reason: str = ""
    value: float = 0.0
    metrics: Dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.healthy


OK = ProbeResult(healthy=True)


class HeartbeatProbe:
    """Is the Measurement server online and outside any flap window?

    Combines the distributor's view (heartbeat-expired servers are
    marked offline) with the fault plan's flap table, so a server that
    just entered a flap window reads as down *before* the heartbeat
    timeout elapses — detection latency is one supervisor tick, not one
    timeout.
    """

    def __init__(self, distributor, name: str, faults=None) -> None:
        self.distributor = distributor
        self.name = name
        self.faults = faults

    def check(self, now: float) -> ProbeResult:
        record = self.distributor.server(self.name)
        age = now - record.last_seen
        if not record.online:
            return ProbeResult(
                False, "heartbeat expired", 0.0,
                metrics={"heartbeat_age_s": age},
            )
        if self.faults is not None and self.name in self.faults.flapping_hosts(now):
            return ProbeResult(
                False, "host flapping", 0.0,
                metrics={"heartbeat_age_s": age},
            )
        return OK


class QueueDepthProbe:
    """Is the server's engine fetch queue bounded?

    A queue deeper than ``max_queued`` means fetch tasks are piling up
    faster than the worker pool drains them — the Table-1 saturation
    regime.  The heal action for this probe is a drain, not a restart.
    """

    def __init__(self, engine, server_name: str, max_queued: int = 64) -> None:
        self.engine = engine
        self.server_name = server_name
        self.max_queued = max_queued

    def check(self, now: float) -> ProbeResult:
        depth = self.engine.pool_for(self.server_name).queued
        snapshot = {"queue_depth": float(depth),
                    "max_queued": float(self.max_queued)}
        if depth > self.max_queued:
            return ProbeResult(
                False, f"queue depth {depth} > {self.max_queued}",
                float(depth), metrics=snapshot,
            )
        return ProbeResult(True, value=float(depth), metrics=snapshot)


class ErrorRateProbe:
    """Is a cumulative error counter growing faster than allowed?

    ``sample`` returns the counter's current cumulative value (e.g.
    ``lambda: coordinator.jobs_failed``, or a ``repro.obs`` counter
    read).  Each check measures the delta since the previous check —
    a per-tick window — and flags when it exceeds ``max_delta``.
    The first check only establishes the baseline.
    """

    def __init__(
        self, sample: Callable[[], float], max_delta: float, name: str = "errors"
    ) -> None:
        self.sample = sample
        self.max_delta = max_delta
        self.name = name
        self._last: Optional[float] = None

    def check(self, now: float) -> ProbeResult:
        current = float(self.sample())
        previous, self._last = self._last, current
        if previous is None:
            return ProbeResult(True, value=0.0)
        delta = current - previous
        snapshot = {"delta": delta, "cumulative": current,
                    "max_delta": self.max_delta}
        if delta > self.max_delta:
            return ProbeResult(
                False,
                f"{self.name} rate spike: +{delta:g} > {self.max_delta:g} per tick",
                delta, metrics=snapshot,
            )
        return ProbeResult(True, value=delta, metrics=snapshot)


class ShardStalenessProbe:
    """Has this DB shard taken a write recently enough?

    Staleness is measured against the shard's ``last_write_time`` —
    stamped from the rows' own ``time`` fields, so the probe needs no
    clock plumbing into the storage layer.  A shard that has never been
    written is healthy: an empty deployment is not a failing one.
    """

    def __init__(self, db, shard_name: str, max_age: float = 3600.0) -> None:
        self.db = db
        self.shard_name = shard_name
        self.max_age = max_age

    def check(self, now: float) -> ProbeResult:
        last = self.db.shard_last_writes().get(self.shard_name)
        if last is None:
            return OK
        age = now - last
        snapshot = {"staleness_s": age, "max_age_s": self.max_age}
        if age > self.max_age:
            return ProbeResult(
                False, f"no write for {age:g}s > {self.max_age:g}s", age,
                metrics=snapshot,
            )
        return ProbeResult(True, value=age, metrics=snapshot)


class PollutionBudgetProbe:
    """Are too many doppelgangers saturated past their pollution budget?

    Reads :meth:`repro.profiles.doppelganger.Doppelganger.saturated_fraction`
    over the whole fleet; blowing past ``max_fraction`` means served
    profiles no longer look like their clusters — an anomaly worth a
    kill-switch, since continuing to serve them pollutes measurements.
    """

    def __init__(self, dopp_manager, max_fraction: float = 0.5) -> None:
        self.dopp_manager = dopp_manager
        self.max_fraction = max_fraction

    def check(self, now: float) -> ProbeResult:
        dopps = self.dopp_manager.doppelgangers()
        if not dopps:
            return OK
        saturated = sum(1 for d in dopps if d.needs_regeneration())
        fraction = saturated / len(dopps)
        snapshot = {"saturated": float(saturated), "fleet": float(len(dopps)),
                    "fraction": fraction, "max_fraction": self.max_fraction}
        if fraction > self.max_fraction:
            return ProbeResult(
                False,
                f"{saturated}/{len(dopps)} doppelgangers saturated "
                f"(> {self.max_fraction:.0%})",
                fraction, metrics=snapshot,
            )
        return ProbeResult(True, value=fraction, metrics=snapshot)


class JobQueueBacklogProbe:
    """Is the queued measurement tier's outbox near its admission limit?

    Reads the tier's current depth against ``max_depth``; a sustained
    backlog above ``max_fraction`` of the limit means admission control
    is about to start shedding — worth an alert *before* clients see
    :class:`~repro.core.errors.QueueSaturated`.  Alert-only: the queue
    drains itself on the next poll, there is nothing to restart.
    """

    def __init__(self, tier, max_fraction: float = 0.9) -> None:
        self.tier = tier
        self.max_fraction = max_fraction

    def check(self, now: float) -> ProbeResult:
        depth = self.tier.queue.depth
        limit = self.tier.max_depth
        fraction = depth / limit if limit else 0.0
        snapshot = {"backlog": float(depth), "max_depth": float(limit),
                    "fraction": fraction}
        if fraction > self.max_fraction:
            return ProbeResult(
                False,
                f"queue backlog {depth}/{limit} (> {self.max_fraction:.0%})",
                fraction, metrics=snapshot,
            )
        return ProbeResult(True, value=fraction, metrics=snapshot)


class DeadLetterProbe:
    """Did the queue tier dead-letter any jobs since the last check?

    Delta-style like :class:`ErrorRateProbe`: each check compares the
    dead-letter store's size against the previous tick and flags any
    growth beyond ``max_delta``.  The first check only establishes the
    baseline.  Dead letters are terminal — every one is a job whose
    retry budget ran dry — so the default tolerance is zero.
    """

    def __init__(self, tier, max_delta: float = 0.0) -> None:
        self.tier = tier
        self.max_delta = max_delta
        self._last: Optional[int] = None

    def check(self, now: float) -> ProbeResult:
        current = len(self.tier.dead_letters)
        previous, self._last = self._last, current
        if previous is None:
            return ProbeResult(True, value=0.0)
        delta = current - previous
        snapshot = {"new_dead_letters": float(delta),
                    "total_dead_letters": float(current)}
        if delta > self.max_delta:
            return ProbeResult(
                False,
                f"{delta} new dead-lettered job(s) this tick",
                float(delta), metrics=snapshot,
            )
        return ProbeResult(True, value=float(delta), metrics=snapshot)


class SLOBurnRateProbe:
    """Is an SLO's error budget burning faster than tolerated?

    Windowed like :class:`ErrorRateProbe`: each check reads the SLO's
    cumulative ``(good, total)`` event counts from a
    :class:`repro.obs.slo.SLOEngine` and computes the *burn rate* over
    the delta since the previous check —

        ``burn = (bad_delta / total_delta) / error_budget``

    — so 1.0 means bad events arrived exactly at the rate that would
    exhaust the budget over the compliance window, and ``max_burn_rate``
    is the alerting multiple (Google's SRE workbook pages at 1–14×
    depending on window).  The first check only establishes the
    baseline; a tick with no new events is healthy (no traffic burns no
    budget).  Read-only and RNG-free like every probe: alert-only
    components wear it, nothing restarts over a latency promise.
    """

    def __init__(self, engine, slo_name: str, max_burn_rate: float = 1.0) -> None:
        self.engine = engine
        self.slo_name = slo_name
        self.max_burn_rate = max_burn_rate
        self._last: Optional[tuple] = None

    def check(self, now: float) -> ProbeResult:
        good, total = self.engine.counts(self.slo_name)
        previous, self._last = self._last, (good, total)
        if previous is None:
            return ProbeResult(True, value=0.0)
        good_delta = good - previous[0]
        total_delta = total - previous[1]
        if total_delta <= 0:
            return ProbeResult(True, value=0.0)
        slo = self.engine.get(self.slo_name)
        bad_delta = total_delta - good_delta
        burn = (bad_delta / total_delta) / slo.error_budget
        snapshot = {
            "burn_rate": burn,
            "bad_delta": bad_delta,
            "total_delta": total_delta,
            "error_budget": slo.error_budget,
            "max_burn_rate": self.max_burn_rate,
        }
        if burn > self.max_burn_rate:
            return ProbeResult(
                False,
                f"SLO {self.slo_name!r} burn rate {burn:.2f}x "
                f"> {self.max_burn_rate:g}x budget",
                burn, metrics=snapshot,
            )
        return ProbeResult(True, value=burn, metrics=snapshot)


class CallableProbe:
    """Adapts ``fn(now) -> bool | ProbeResult`` into a probe."""

    def __init__(self, fn: Callable[[float], object], name: str = "probe") -> None:
        self.fn = fn
        self.name = name

    def check(self, now: float) -> ProbeResult:
        verdict = self.fn(now)
        if isinstance(verdict, ProbeResult):
            return verdict
        return OK if verdict else ProbeResult(False, f"{self.name} failed")
