"""Wiring a :class:`~repro.ops.supervisor.Supervisor` over a deployment.

:func:`build_supervisor` registers every component of a
:class:`repro.core.sheriff.PriceSheriff` with the probes and restart
actions that fit it:

* **Measurement servers** — heartbeat probe (distributor status + flap
  table); restart = :meth:`PriceSheriff.restart_measurement_server`.
  These are the components the chaos profiles actually kill, so they
  are the ones with a real restart action and the ``critical`` flag.
* **Engine worker pools** — queue-depth probe per server; heal action
  is a drain (run the loop dry), not a process restart.
* **DB shards** — staleness probe per shard (alert-only: the simulated
  storage engine has no process to bounce, a stale shard needs a
  human).
* **Coordinator** — error-rate probe over its terminal job failures.
* **IPC fleet / PPC overlay** — fleet-wide error-rate probes
  (alert-only; individual volunteers cannot be restarted by us).
* **SLOs** — when the deployment carries an enabled telemetry plane,
  one alert-only burn-rate component per declared objective
  (``slo/<name>``): a latency or availability promise burning its
  error budget faster than ``slo_max_burn_rate`` pages, nothing
  restarts.

Plus the deployment-wide anomaly detectors: a fleet error-rate spike
and a pollution-budget blowout trip the kill-switch; stale shards
alert.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs.slo import SLOEngine, build_default_slos
from repro.ops.audit import AuditTrail
from repro.ops.health import (
    CallableProbe,
    DeadLetterProbe,
    ErrorRateProbe,
    HeartbeatProbe,
    JobQueueBacklogProbe,
    PollutionBudgetProbe,
    QueueDepthProbe,
    SLOBurnRateProbe,
    ShardStalenessProbe,
)
from repro.ops.notifiers import Notifier
from repro.ops.supervisor import RestartPolicy, Supervisor

__all__ = ["build_supervisor"]


def build_supervisor(
    sheriff,
    notifiers: Sequence[Notifier] = (),
    audit_path: Optional[str] = None,
    restart_policy: Optional[RestartPolicy] = None,
    heartbeat_policy: Optional[RestartPolicy] = None,
    max_queue_depth: int = 256,
    max_job_failures_per_tick: float = 5.0,
    shard_staleness: float = 24 * 3600.0,
    pollution_max_fraction: float = 0.5,
    queue_backlog_fraction: float = 0.9,
    slo_engine: Optional[SLOEngine] = None,
    slo_max_burn_rate: float = 1.0,
) -> Supervisor:
    """Stand up the self-healing layer over a live deployment.

    ``slo_engine`` overrides the stock objectives
    (:func:`repro.obs.slo.build_default_slos`); pass an engine with your
    own declarations to alert on them instead.  SLO components only
    exist when the sheriff's telemetry registry is enabled — burn rates
    are computed from metrics, and a disabled registry has none.
    """
    clock = sheriff.world.clock
    audit = AuditTrail(clock, path=audit_path)
    supervisor = Supervisor(clock, audit=audit, notifiers=notifiers)
    if sheriff.telemetry.registry.enabled:
        supervisor.bind_telemetry(sheriff.telemetry)
    policy = restart_policy if restart_policy is not None else RestartPolicy()
    ms_policy = heartbeat_policy if heartbeat_policy is not None else policy

    # Measurement servers: the restartable, critical fleet.
    for name in list(sheriff.measurement_servers):
        supervisor.register(
            name,
            probes=(
                HeartbeatProbe(sheriff.distributor, name, faults=sheriff.faults),
            ),
            restart=(
                lambda server_name=name:
                sheriff.restart_measurement_server(server_name)
            ),
            critical=True,
            policy=ms_policy,
        )
        supervisor.register(
            f"{name}/pool",
            probes=(QueueDepthProbe(sheriff.engine, name, max_queue_depth),),
            restart=sheriff.engine.drain,
            policy=policy,
        )

    # Database shards: staleness is observable, restarts are not ours.
    for shard_name in sheriff.db.shard_last_writes():
        supervisor.register(
            f"db/{shard_name}",
            probes=(
                ShardStalenessProbe(sheriff.db, shard_name, shard_staleness),
            ),
        )

    # Queued measurement tier (when one is deployed): backlog pressure
    # and dead-letter growth.  Both alert-only — the queue drains itself
    # and dead letters are terminal; restarting nothing keeps the
    # supervisor's restart-equivalence property intact.
    job_queue = getattr(sheriff, "job_queue", None)
    if job_queue is not None:
        supervisor.register(
            "jobqueue",
            probes=(JobQueueBacklogProbe(job_queue, queue_backlog_fraction),),
        )
        supervisor.register(
            "jobqueue/dlq",
            probes=(DeadLetterProbe(job_queue),),
        )

    # Coordinator: watch terminal job failures per tick.
    supervisor.register(
        "coordinator",
        probes=(
            ErrorRateProbe(
                lambda: sheriff.coordinator.jobs_failed,
                max_job_failures_per_tick,
                name="job failures",
            ),
        ),
    )

    # IPC fleet: fetch failures after retries, fleet-wide.
    supervisor.register(
        "ipc-fleet",
        probes=(
            ErrorRateProbe(
                lambda: sheriff.measurement_stats().ipc_failures,
                max_job_failures_per_tick,
                name="IPC fetch failures",
            ),
        ),
    )

    # PPC overlay: lost volunteer replies, fleet-wide.
    supervisor.register(
        "ppc-fleet",
        probes=(
            ErrorRateProbe(
                lambda: (
                    lambda s: s.ppc_dropped + s.ppc_timeouts + s.ppc_corrupt
                )(sheriff.measurement_stats()),
                max_job_failures_per_tick,
                name="PPC losses",
            ),
        ),
    )

    # SLO burn-rate watch: one alert-only component per objective.
    # Gated on the registry — burn rates read metrics snapshots, and
    # with telemetry off there is nothing to read (and the component
    # set of untelemetered deployments stays exactly as before).
    if sheriff.telemetry.registry.enabled:
        if slo_engine is None:
            slo_engine = build_default_slos(
                SLOEngine(sheriff.telemetry.registry, clock)
            )
        supervisor.slo_engine = slo_engine
        for slo in slo_engine.slos():
            supervisor.register(
                f"slo/{slo.name}",
                probes=(
                    SLOBurnRateProbe(slo_engine, slo.name, slo_max_burn_rate),
                ),
            )

    # Deployment-wide anomaly detectors.
    supervisor.add_anomaly_detector(
        "error-spike",
        ErrorRateProbe(
            lambda: sheriff.coordinator.jobs_failed,
            max(10.0, 3 * max_job_failures_per_tick),
            name="deployment job failures",
        ),
        action="kill",
    )
    supervisor.add_anomaly_detector(
        "pollution-budget",
        PollutionBudgetProbe(sheriff.dopp_manager, pollution_max_fraction),
        action="kill",
    )
    supervisor.add_anomaly_detector(
        "stale-shards",
        CallableProbe(
            lambda now, db=sheriff.db, age=shard_staleness: _all_shards_fresh(
                db, now, age
            ),
            name="all shards fresh",
        ),
        action="alert",
    )
    return supervisor


def _all_shards_fresh(db, now: float, max_age: float) -> bool:
    last_writes = [t for t in db.shard_last_writes().values() if t is not None]
    if not last_writes:
        return True
    return all(now - t <= max_age for t in last_writes)
