"""``repro.ops`` — the self-healing operations layer.

The paper's watchdog service watched *prices*; its own availability was
kept up by operators applying corrective measures by hand (App. 10.3).
This package is the automated operator:

* :mod:`repro.ops.supervisor` — the :class:`Supervisor` loop: liveness
  and health probes per component, auto-restarts with flap-prevention
  delays and sliding-window restart budgets, escalation when a budget
  runs dry;
* :mod:`repro.ops.health` — the probe library (heartbeats, queue depth,
  error rates, shard staleness, pollution budgets), all read-only and
  RNG-free;
* :mod:`repro.ops.killswitch` — the latched circuit breaker anomalies
  trip;
* :mod:`repro.ops.audit` — the persistent, sim-clock-stamped audit
  trail, mirrored 1:1 into ``sheriff_ops_*`` metrics;
* :mod:`repro.ops.notifiers` — pluggable alert fan-out (log, callback,
  file, webhook stub);
* :mod:`repro.ops.wiring` — :func:`build_supervisor`, which registers a
  whole :class:`repro.core.sheriff.PriceSheriff` deployment.

Not to be confused with :class:`repro.core.watchdog.Watchdog`, the
Sect. 6 product-price watcher — that one watches prices, this package
watches the service.
"""

from repro.ops.audit import AuditTrail, OpsEvent
from repro.ops.health import (
    CallableProbe,
    ErrorRateProbe,
    HeartbeatProbe,
    PollutionBudgetProbe,
    ProbeResult,
    QueueDepthProbe,
    ShardStalenessProbe,
)
from repro.ops.killswitch import KillSwitch, KillSwitchTripped
from repro.ops.notifiers import (
    CallbackNotifier,
    FileNotifier,
    LogNotifier,
    Notifier,
    NotifierFanout,
    WebhookNotifier,
)
from repro.ops.supervisor import (
    Component,
    HealReport,
    RestartPolicy,
    Supervisor,
)
from repro.ops.wiring import build_supervisor

__all__ = [
    "AuditTrail",
    "CallableProbe",
    "CallbackNotifier",
    "Component",
    "ErrorRateProbe",
    "FileNotifier",
    "HealReport",
    "HeartbeatProbe",
    "KillSwitch",
    "KillSwitchTripped",
    "LogNotifier",
    "Notifier",
    "NotifierFanout",
    "OpsEvent",
    "PollutionBudgetProbe",
    "ProbeResult",
    "QueueDepthProbe",
    "RestartPolicy",
    "ShardStalenessProbe",
    "Supervisor",
    "WebhookNotifier",
    "build_supervisor",
]
