"""The deployment kill-switch.

Some anomalies must *stop* the machine, not heal it: an error-rate
spike across the fleet, shards gone stale together, a pollution-budget
blowout.  Restarting components through those is how an automated
operations layer turns one bad input into a measurement-corrupting
restart storm.  The kill-switch is the circuit breaker: once tripped,
the supervisor stops restarting anything until an operator resets it,
and both transitions land in the persistent audit trail and every
registered notifier.

Tripping is idempotent — the first trip records and alerts, repeats
while already tripped are counted but stay silent, so the audit trail
holds each trip exactly once.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import KillSwitchTripped
from repro.ops.audit import AuditTrail
from repro.ops.notifiers import NotifierFanout

__all__ = ["KillSwitch", "KillSwitchTripped"]


class KillSwitch:
    """A latched stop for the self-healing machinery."""

    def __init__(
        self, audit: AuditTrail, fanout: Optional[NotifierFanout] = None
    ) -> None:
        self.audit = audit
        self.fanout = fanout if fanout is not None else NotifierFanout()
        self._tripped = False
        self.reason: Optional[str] = None
        self.trips = 0
        #: trip() calls absorbed while already tripped (audited once)
        self.suppressed_trips = 0

    @property
    def tripped(self) -> bool:
        return self._tripped

    def trip(self, reason: str, component: str = "deployment") -> bool:
        """Latch the switch; returns True when this call did the trip."""
        if self._tripped:
            self.suppressed_trips += 1
            return False
        self._tripped = True
        self.reason = reason
        self.trips += 1
        event = self.audit.record("killswitch_tripped", component, reason)
        self.fanout.notify(event)
        return True

    def reset(self, operator: str = "operator") -> None:
        """Operator action: re-arm the switch (audited and alerted)."""
        if not self._tripped:
            return
        self._tripped = False
        previous, self.reason = self.reason, None
        event = self.audit.record(
            "killswitch_reset", operator, f"was: {previous}"
        )
        self.fanout.notify(event)

    def check(self) -> None:
        """Raise :class:`KillSwitchTripped` when the switch is latched —
        the guard hot paths call before taking supervised actions."""
        if self._tripped:
            raise KillSwitchTripped(
                f"kill-switch tripped: {self.reason or 'unknown reason'}"
            )
