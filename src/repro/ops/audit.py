"""The operations audit trail: every self-healing action, on the record.

The paper's deployment was healed by hand — App. 10.3 describes the
operators' "corrective measures" but no log of when they fired.  The
supervisor automates those measures, and automation that restarts
services or trips a kill-switch must leave a paper trail: an operator
(or a regression test) has to be able to reconstruct *exactly* what the
machinery did and when, on the simulated clock.

:class:`AuditTrail` is that record.  It is append-only, stamped by the
injected clock (never wall time, so runs replay identically from their
seeds), optionally persisted as JSON lines, and mirrored 1:1 into the
``sheriff_ops_events_total`` metric family — the single
:meth:`AuditTrail.record` choke point bumps the counter, so the metric
cannot drift from the log the tests compare.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, IO, List, Optional, Tuple

__all__ = ["AuditTrail", "OpsEvent"]


@dataclass(frozen=True)
class OpsEvent:
    """One supervisor/kill-switch action, exactly once in the trail.

    ``values`` carries the triggering probe's metric snapshot (queue
    depth, error delta, burn rate …) so each alert line in the JSONL is
    self-explanatory — the operator sees the numbers that fired it, not
    just the prose.
    """

    seq: int
    time: float
    kind: str        # e.g. "component_down", "component_restarted",
                     # "restart_budget_exhausted", "killswitch_tripped"
    component: str
    detail: str = ""
    values: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        text = f"t={self.time:10.1f}  {self.kind:<26} {self.component}"
        return f"{text}  ({self.detail})" if self.detail else text


class AuditTrail:
    """Append-only, sim-clock-stamped log of operations events.

    ``path`` (optional) appends each event as one JSON line the moment
    it is recorded, so a crash mid-run still leaves the trail on disk —
    the persistence the kill-switch requires.
    """

    def __init__(self, clock, path: Optional[str] = None) -> None:
        self._clock = clock
        self._path = path
        self._events: List[OpsEvent] = []
        self._m_events = None

    def bind_telemetry(self, telemetry) -> None:
        """Mirror every event into ``sheriff_ops_events_total{kind=}``."""
        self._m_events = telemetry.registry.counter(
            "sheriff_ops_events_total",
            "Supervisor/kill-switch events, by kind",
            labelnames=("kind",),
        )
        for event in self._events:  # backfill pre-bind events
            self._m_events.inc(kind=event.kind)

    # -- recording ---------------------------------------------------------
    def record(
        self,
        kind: str,
        component: str,
        detail: str = "",
        values: Optional[Dict[str, float]] = None,
    ) -> OpsEvent:
        event = OpsEvent(
            seq=len(self._events), time=self._clock.now,
            kind=kind, component=component, detail=detail,
            values=dict(values) if values else {},
        )
        self._events.append(event)
        if self._m_events is not None:
            self._m_events.inc(kind=kind)
        if self._path is not None:
            with open(self._path, "a") as fh:
                fh.write(json.dumps(asdict(event)) + "\n")
        return event

    # -- reading -----------------------------------------------------------
    def events(
        self, kind: Optional[str] = None, component: Optional[str] = None
    ) -> Tuple[OpsEvent, ...]:
        """Immutable snapshot, filterable, comparable across runs."""
        return tuple(
            e for e in self._events
            if (kind is None or e.kind == kind)
            and (component is None or e.component == component)
        )

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for event in self._events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return tally

    def __len__(self) -> int:
        return len(self._events)

    def export_jsonl(self, fh: IO[str]) -> int:
        """Write the whole trail as JSON lines; returns the line count."""
        for event in self._events:
            fh.write(json.dumps(asdict(event)) + "\n")
        return len(self._events)
