"""The Supervisor: the watchdog that watches the watchdog service.

The paper's deployment was kept alive by operators applying "corrective
measures" by hand (App. 10.3).  This module automates the operator: a
:class:`Supervisor` holds one :class:`Component` per deployment part —
Measurement servers, the coordinator, DB shards, the IPC/PPC fleets,
the engine worker pools — each with liveness/health probes
(:mod:`repro.ops.health`), an optional restart action, and a
flap-prevention restart policy.

One :meth:`Supervisor.tick` is one supervision sweep at the current
simulated time:

1. every component's probes run (read-only, RNG-free);
2. a component that just went unhealthy is audited + alerted, and — if
   it has a restart action — a restart is *scheduled* after a delay
   that doubles with each consecutive failure (flap prevention: a
   flapping host is not hammered with instant restarts);
3. due restarts execute, within a sliding-window restart budget; a
   component that exhausts its budget is **escalated** instead of
   restart-looped, and a critical component's escalation trips the
   deployment kill-switch;
4. anomaly detectors (error-rate spike, stale shards, pollution-budget
   blowout) run; firing ones trip the kill-switch or alert, per their
   configured action.

Determinism: ticking never consumes any seeded RNG stream and never
advances a clock — supervision is pure observation plus explicitly
scheduled actions, so a supervised run stays seed-reproducible
(:mod:`tests.ops` pins restart-equivalence).  :meth:`Supervisor.heal`
*does* advance the simulated clock — it is the test harness's
"wait for convergence" loop, run after a workload finishes.

Name note: :class:`repro.core.watchdog.Watchdog` watches product
*prices* for the paper's Sect. 6 use case; this module watches the
*service*.  Both are exported from :mod:`repro` under distinct names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ops.audit import AuditTrail
from repro.ops.health import ProbeResult
from repro.ops.killswitch import KillSwitch
from repro.ops.notifiers import Notifier, NotifierFanout

__all__ = [
    "Component",
    "HealReport",
    "RestartPolicy",
    "Supervisor",
    "UP",
    "DOWN",
    "RESTART_PENDING",
    "ESCALATED",
]

#: component lifecycle states
UP = "up"
DOWN = "down"                       # unhealthy, no restart action
RESTART_PENDING = "restart_pending"  # unhealthy, restart scheduled
ESCALATED = "escalated"             # restart budget exhausted


@dataclass(frozen=True)
class RestartPolicy:
    """Flap prevention: how eagerly one component may be restarted.

    The first restart waits ``delay`` simulated seconds after the
    failure is detected; each *consecutive* failure (a restart that did
    not stick) doubles the wait up to ``max_delay``.  At most ``budget``
    restarts may happen within any sliding ``window`` — beyond that the
    component escalates to a human instead of restart-looping.
    """

    delay: float = 5.0
    backoff_factor: float = 2.0
    max_delay: float = 600.0
    budget: int = 5
    window: float = 3600.0

    def restart_delay(self, consecutive_failures: int) -> float:
        exponent = max(0, consecutive_failures - 1)
        return min(self.max_delay, self.delay * self.backoff_factor ** exponent)


@dataclass
class Component:
    """One supervised deployment part."""

    name: str
    #: objects with ``check(now) -> ProbeResult``
    probes: Tuple[object, ...] = ()
    #: action that restarts the component (None = alert-only)
    restart: Optional[Callable[[], None]] = None
    #: escalation on a critical component trips the kill-switch
    critical: bool = False
    policy: RestartPolicy = field(default_factory=RestartPolicy)
    state: str = UP
    #: failures since the last healthy sighting (drives flap backoff)
    consecutive_failures: int = 0
    #: sim times of past restarts (pruned to the budget window)
    restart_times: List[float] = field(default_factory=list)
    pending_restart_at: Optional[float] = None
    last_reason: str = ""
    restarts: int = 0

    def probe(self, now: float) -> ProbeResult:
        """First failing probe wins; all-healthy means healthy."""
        for probe in self.probes:
            verdict = probe.check(now)
            if not verdict.healthy:
                return verdict
        return ProbeResult(healthy=True)

    def budget_left(self, now: float) -> int:
        self.restart_times = [
            t for t in self.restart_times if now - t <= self.policy.window
        ]
        return self.policy.budget - len(self.restart_times)

    def panel_row(self) -> Dict[str, object]:
        return {
            "Component": self.name,
            "State": self.state,
            "Restarts": self.restarts,
            "Detail": self.last_reason,
        }


@dataclass
class _AnomalyDetector:
    """A deployment-wide probe wired to the kill-switch or an alert."""

    name: str
    probe: object
    action: str = "kill"  # "kill" | "alert"
    fired: bool = False


@dataclass(frozen=True)
class HealReport:
    """Outcome of one :meth:`Supervisor.heal` convergence loop."""

    converged: bool
    elapsed: float
    ticks: int
    unhealthy: Tuple[str, ...] = ()


class Supervisor:
    """Self-healing loop over a registry of supervised components."""

    def __init__(
        self,
        clock,
        audit: Optional[AuditTrail] = None,
        notifiers: Sequence[Notifier] = (),
        killswitch: Optional[KillSwitch] = None,
    ) -> None:
        self.clock = clock
        self.audit = audit if audit is not None else AuditTrail(clock)
        self.fanout = NotifierFanout(tuple(notifiers))
        self.killswitch = (
            killswitch
            if killswitch is not None
            else KillSwitch(self.audit, self.fanout)
        )
        self.components: Dict[str, Component] = {}
        self._detectors: List[_AnomalyDetector] = []
        self.ticks = 0
        #: the SLO engine behind any slo/* components (wiring sets it)
        self.slo_engine = None
        self._m_up = None
        self._m_restarts = None
        self._halt_logged = False

    # -- telemetry -----------------------------------------------------------
    def bind_telemetry(self, telemetry) -> None:
        """Attach the deployment's telemetry plane (unified convention).

        Wires the audit trail's ``sheriff_ops_events_total`` mirror plus
        the per-component up gauge and restart counter.
        """
        registry = telemetry.registry
        self.audit.bind_telemetry(telemetry)
        self._m_up = registry.gauge(
            "sheriff_ops_component_up",
            "1 = component healthy, 0 = down/escalated",
            labelnames=("component",),
        )
        self._m_restarts = registry.counter(
            "sheriff_ops_restarts_total",
            "Supervised restarts executed, per component",
            labelnames=("component",),
        )
        for component in self.components.values():
            self._sync_gauge(component)

    def _sync_gauge(self, component: Component) -> None:
        if self._m_up is not None:
            self._m_up.set(
                1 if component.state == UP else 0, component=component.name
            )

    # -- registry ------------------------------------------------------------
    def register(
        self,
        name: str,
        probes: Sequence[object] = (),
        restart: Optional[Callable[[], None]] = None,
        critical: bool = False,
        policy: Optional[RestartPolicy] = None,
    ) -> Component:
        if name in self.components:
            raise ValueError(f"component {name!r} already supervised")
        component = Component(
            name=name,
            probes=tuple(probes),
            restart=restart,
            critical=critical,
            policy=policy if policy is not None else RestartPolicy(),
        )
        self.components[name] = component
        self._sync_gauge(component)
        return component

    def unregister(self, name: str) -> None:
        component = self.components.pop(name, None)
        if component is not None and self._m_up is not None:
            self._m_up.remove(component=name)

    def component(self, name: str) -> Component:
        return self.components[name]

    def add_anomaly_detector(
        self, name: str, probe: object, action: str = "kill"
    ) -> None:
        """A deployment-wide check; ``action`` is ``kill`` or ``alert``."""
        if action not in ("kill", "alert"):
            raise ValueError(f"unknown anomaly action {action!r}")
        self._detectors.append(_AnomalyDetector(name=name, probe=probe, action=action))

    # -- the supervision sweep ----------------------------------------------
    def tick(self) -> List[str]:
        """One sweep at the current simulated time.

        Returns the names of components restarted this tick.  While the
        kill-switch is tripped the sweep is inert: probes still run (so
        state stays observable) but no restart is scheduled or executed.
        """
        self.ticks += 1
        now = self.clock.now
        restarted: List[str] = []
        halted = self.killswitch.tripped
        if halted and not self._halt_logged:
            self._notify(self.audit.record(
                "healing_halted", "supervisor",
                f"kill-switch tripped: {self.killswitch.reason}",
            ))
            self._halt_logged = True
        if not halted:
            self._halt_logged = False

        for component in self.components.values():
            verdict = component.probe(now)
            if verdict.healthy:
                self._on_healthy(component)
                continue
            component.last_reason = verdict.reason
            if component.state == UP:
                self._on_down(component, now, verdict, halted)
            elif (
                component.state == RESTART_PENDING
                and not halted
                and component.pending_restart_at is not None
                and now >= component.pending_restart_at
            ):
                self._execute_restart(component, now)
                restarted.append(component.name)
            elif (
                component.state == DOWN
                and not halted
                and component.restart is not None
            ):
                # healing resumed (kill-switch reset) for a component
                # that went down while the sweep was halted
                self._schedule_restart(component, now)
            self._sync_gauge(component)

        for detector in self._detectors:
            self._run_detector(detector, now)
        return restarted

    def _notify(self, event) -> None:
        self.fanout.notify(event)

    def _on_healthy(self, component: Component) -> None:
        if component.state in (DOWN, RESTART_PENDING):
            # self-recovery: a flap window closed before the scheduled
            # restart fired (or an alert-only component came back)
            self._notify(self.audit.record(
                "component_recovered", component.name, component.last_reason
            ))
        if component.state != ESCALATED:
            # escalations stay latched until an operator resolves them
            component.state = UP
            component.consecutive_failures = 0
            component.pending_restart_at = None
            component.last_reason = ""
        self._sync_gauge(component)

    def _on_down(
        self, component: Component, now: float, verdict: ProbeResult,
        halted: bool,
    ) -> None:
        component.consecutive_failures += 1
        self._notify(self.audit.record(
            "component_down", component.name, verdict.reason,
            values=verdict.metrics,
        ))
        if component.restart is None:
            component.state = DOWN
            return
        if halted:
            component.state = DOWN
            return
        self._schedule_restart(component, now)

    def _schedule_restart(self, component: Component, now: float) -> None:
        if component.budget_left(now) <= 0:
            self._escalate(component, now)
            return
        delay = component.policy.restart_delay(component.consecutive_failures)
        component.pending_restart_at = now + delay
        component.state = RESTART_PENDING
        self.audit.record(
            "restart_scheduled", component.name, f"in {delay:g}s"
        )

    def _execute_restart(self, component: Component, now: float) -> None:
        if component.budget_left(now) <= 0:
            self._escalate(component, now)
            return
        assert component.restart is not None
        component.restart()
        component.restart_times.append(now)
        component.restarts += 1
        component.pending_restart_at = None
        # optimistic: the next tick's probes either confirm (healthy,
        # counters reset) or schedule the next, longer-delayed restart
        component.state = UP
        if self._m_restarts is not None:
            self._m_restarts.inc(component=component.name)
        self._notify(self.audit.record(
            "component_restarted", component.name,
            f"attempt {component.restarts}",
        ))

    def _escalate(self, component: Component, now: float) -> None:
        if component.state == ESCALATED:
            return
        component.state = ESCALATED
        component.pending_restart_at = None
        event = self.audit.record(
            "restart_budget_exhausted", component.name,
            f"{len(component.restart_times)} restarts within "
            f"{component.policy.window:g}s",
        )
        self._notify(event)
        if component.critical:
            self.killswitch.trip(
                f"critical component {component.name} exhausted its "
                f"restart budget",
                component=component.name,
            )

    def _run_detector(self, detector: _AnomalyDetector, now: float) -> None:
        verdict = detector.probe.check(now)
        if verdict.healthy:
            detector.fired = False
            return
        if detector.fired:
            return  # one audit entry per continuous anomaly episode
        detector.fired = True
        event = self.audit.record(
            "anomaly_detected", detector.name, verdict.reason,
            values=verdict.metrics,
        )
        self._notify(event)
        if detector.action == "kill":
            self.killswitch.trip(
                f"anomaly {detector.name}: {verdict.reason}",
                component=detector.name,
            )

    # -- convergence ---------------------------------------------------------
    def unhealthy_components(self) -> List[str]:
        return sorted(
            c.name for c in self.components.values() if c.state != UP
        )

    def heal(
        self,
        max_seconds: float = 600.0,
        step: float = 5.0,
        pre_tick: Optional[Callable[[], object]] = None,
    ) -> HealReport:
        """Advance simulated time until every component is healthy.

        The convergence loop of the chaos tests: step the clock, run
        ``pre_tick`` (typically ``coordinator.chaos_tick``, so heartbeat
        expiry keeps pace with the supervisor's view), then
        :meth:`tick`, until no component is unhealthy or ``max_seconds``
        of simulated time elapse.  Bounded by construction — it cannot
        hang, it returns a non-converged report instead.
        """
        start = self.clock.now
        ticks = 0
        while True:
            if pre_tick is not None:
                pre_tick()
            restarted = self.tick()
            ticks += 1
            unhealthy = self.unhealthy_components()
            # a tick that executed restarts never concludes the loop:
            # restarts leave the component optimistically UP, so at
            # least one more probe sweep must confirm they stuck
            if not unhealthy and not restarted:
                return HealReport(
                    converged=True, elapsed=self.clock.now - start, ticks=ticks
                )
            if self.clock.now - start >= max_seconds:
                return HealReport(
                    converged=False, elapsed=self.clock.now - start,
                    ticks=ticks, unhealthy=tuple(unhealthy),
                )
            self.clock.advance(step)

    # -- monitoring -----------------------------------------------------------
    def status(self) -> Dict[str, object]:
        states = [c.state for c in self.components.values()]
        return {
            "components": len(self.components),
            "healthy": states.count(UP),
            "escalated": states.count(ESCALATED),
            "restarts": sum(c.restarts for c in self.components.values()),
            "killswitch": "tripped" if self.killswitch.tripped else "armed",
            "audit_events": len(self.audit),
        }

    def monitoring_rows(self) -> List[Dict[str, object]]:
        """The operator panel: one row per supervised component."""
        return [c.panel_row() for c in self.components.values()]
