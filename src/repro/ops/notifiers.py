"""Pluggable alert notifiers for the operations layer.

When the supervisor restarts a component or the kill-switch trips,
someone has to hear about it.  A :class:`Notifier` receives each
:class:`repro.ops.audit.OpsEvent` once; :class:`NotifierFanout` delivers
one event to every registered notifier, isolating a broken notifier so
an alerting failure can never take the healing loop down with it.

Four concrete notifiers ship:

* :class:`LogNotifier` — collects human-readable lines (the operator
  console / test assertion surface);
* :class:`CallbackNotifier` — invokes an arbitrary callable (pager glue);
* :class:`FileNotifier` — appends JSON lines to a path;
* :class:`WebhookNotifier` — a *stub*: the simulation has no real HTTP,
  so it records the POSTs it would have made, payload included.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Callable, Dict, List, Tuple

from repro.ops.audit import OpsEvent

__all__ = [
    "CallbackNotifier",
    "FileNotifier",
    "LogNotifier",
    "Notifier",
    "NotifierFanout",
    "WebhookNotifier",
]


class Notifier:
    """Base class: receives each operations event exactly once."""

    def notify(self, event: OpsEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class LogNotifier(Notifier):
    """Collects rendered alert lines (and optionally prints them)."""

    def __init__(self, echo: bool = False) -> None:
        self.echo = echo
        self.lines: List[str] = []

    def notify(self, event: OpsEvent) -> None:
        line = event.describe()
        self.lines.append(line)
        if self.echo:  # pragma: no cover - console side effect
            print(f"[ops] {line}")


class CallbackNotifier(Notifier):
    """Hands each event to a callable — the pager/chat-bot adapter."""

    def __init__(self, fn: Callable[[OpsEvent], None]) -> None:
        self.fn = fn

    def notify(self, event: OpsEvent) -> None:
        self.fn(event)


class FileNotifier(Notifier):
    """Appends one JSON line per event to a file."""

    def __init__(self, path: str) -> None:
        self.path = path

    def notify(self, event: OpsEvent) -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(asdict(event)) + "\n")


class WebhookNotifier(Notifier):
    """Webhook stub: records the deliveries a real one would POST.

    The container has no network and the simulation no HTTP client, so
    this notifier only builds the payload and remembers it — enough for
    tests to assert the webhook surface, and for a deployment to swap in
    a real transport by overriding :meth:`deliver`.
    """

    def __init__(self, url: str) -> None:
        self.url = url
        self.deliveries: List[Tuple[str, Dict[str, object]]] = []

    def deliver(self, url: str, payload: Dict[str, object]) -> None:
        self.deliveries.append((url, payload))

    def notify(self, event: OpsEvent) -> None:
        self.deliver(self.url, asdict(event))


class NotifierFanout:
    """Delivers each event to every notifier, tolerating broken ones.

    A notifier that raises is counted in ``delivery_failures`` and the
    fan-out continues — alerting must never be able to crash (or stall)
    the supervisor that is trying to heal the deployment.
    """

    def __init__(self, notifiers: Tuple[Notifier, ...] = ()) -> None:
        self.notifiers: List[Notifier] = list(notifiers)
        self.delivered = 0
        self.delivery_failures = 0

    def add(self, notifier: Notifier) -> None:
        self.notifiers.append(notifier)

    def notify(self, event: OpsEvent) -> None:
        for notifier in self.notifiers:
            try:
                notifier.notify(event)
                self.delivered += 1
            except Exception:
                self.delivery_failures += 1
