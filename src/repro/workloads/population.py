"""The geo-distributed user base of the live deployment.

Users are distributed across countries following the Table 2 request
mix (Spain-heavy, then France, USA, Switzerland, …) with a long tail
over the remaining countries — the deployment saw 1265 users from 55
countries.  Each user gets:

* a browser located in a concrete city,
* an organic browsing history over the content web (Zipf global
  popularity skewed by a few personal favourite domains) — the raw
  material for profile vectors and tracker state,
* possibly retailer logins (the amazon.com VAT effect needs identified
  users),
* a $heriff add-on; 459 of the paper's 1265 users donated cleartext
  history, reproduced by ``donate_fraction``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.addon import SheriffAddon
from repro.core.sheriff import PriceSheriff
from repro.workloads.alexa import ContentWeb

#: Table 2, "top-10 countries ranked by the number of price check
#: requests", used as user-count weights, plus a tail over the rest.
TABLE2_WEIGHTS: Dict[str, float] = {
    "ES": 2554, "FR": 917, "US": 581, "CH": 387, "DE": 217,
    "BE": 161, "GB": 126, "NL": 96, "CY": 95, "CA": 92,
}
TAIL_WEIGHT_TOTAL = 474.0  # requests outside the top-10 countries


@dataclass
class PopulationConfig:
    n_users: int = 150
    seed: int = 5
    history_visits: Tuple[int, int] = (15, 80)
    donate_fraction: float = 459 / 1265
    login_domains: Tuple[str, ...] = ("amazon.com",)
    login_fraction: float = 0.25
    #: floors guaranteeing enough PPCs where the case studies need them
    min_users_per_country: Dict[str, int] = field(
        default_factory=lambda: {"ES": 12, "FR": 10, "DE": 8, "GB": 14}
    )
    #: interest archetypes: users fall into personas, each a shared set
    #: of favourite domains drawn from the popular head of the content
    #: web — this is the clustering structure Sect. 4 measures
    n_personas: int = 8
    persona_domains_each: int = 6
    persona_boost: float = 8.0
    persona_pool_top: int = 60  # personas draw from the Alexa head
    #: per-user idiosyncratic favourites from the popularity tail —
    #: "domains that are popular only among a few users", which make the
    #: "users top domains" vectors sparser (the Fig. 8(a) mechanism)
    n_personal_domains: int = 2
    personal_boost: float = 20.0


class Population:
    """Creates and owns the deployment's users (browsers + add-ons)."""

    def __init__(
        self,
        sheriff: PriceSheriff,
        content_web: ContentWeb,
        config: Optional[PopulationConfig] = None,
    ) -> None:
        self.sheriff = sheriff
        self.content_web = content_web
        self.config = config if config is not None else PopulationConfig()
        self._rng = random.Random(self.config.seed)
        self.addons: List[SheriffAddon] = []
        self.by_country: Dict[str, List[SheriffAddon]] = {}

    # -- country assignment -----------------------------------------------
    def _country_plan(self) -> List[str]:
        cfg = self.config
        geodb = self.sheriff.world.geodb
        tail = [
            c for c in geodb.country_codes() if c not in TABLE2_WEIGHTS
        ]
        plan: List[str] = []
        # floors are sized for the default 150-user run; scale them down
        # proportionally for smaller populations so the Table 2 mix
        # (Spain-dominant) is preserved at every scale
        for country, floor in cfg.min_users_per_country.items():
            effective = min(floor, max(2, round(floor * cfg.n_users / 150)))
            plan.extend([country] * effective)
        weights = dict(TABLE2_WEIGHTS)
        per_tail = TAIL_WEIGHT_TOTAL / len(tail)
        for c in tail:
            weights[c] = per_tail
        codes = list(weights)
        w = [weights[c] for c in codes]
        while len(plan) < cfg.n_users:
            plan.append(self._rng.choices(codes, weights=w, k=1)[0])
        self._rng.shuffle(plan)
        return plan[: cfg.n_users]

    # -- user construction ------------------------------------------------------
    def _persona_domains(self, persona: int) -> List[str]:
        """The shared favourite set of one interest archetype."""
        cfg = self.config
        pool = self.content_web.domains[
            : min(cfg.persona_pool_top, len(self.content_web.domains))
        ]
        rng = random.Random(1000 + persona)
        return rng.sample(pool, min(cfg.persona_domains_each, len(pool)))

    def _browse_history(self, browser) -> None:
        cfg = self.config
        n_visits = self._rng.randint(*cfg.history_visits)
        bias: Dict[str, float] = {}
        if cfg.n_personas > 0:
            persona = self._rng.randrange(cfg.n_personas)
            for domain in self._persona_domains(persona):
                bias[domain] = cfg.persona_boost
        tail = self.content_web.domains[cfg.persona_pool_top:]
        if tail and cfg.n_personal_domains > 0:
            personal = self._rng.sample(
                tail, min(cfg.n_personal_domains, len(tail))
            )
            for domain in personal:
                bias[domain] = cfg.personal_boost
        for i, domain in enumerate(
            self.content_web.sample_domains(self._rng, n_visits, bias)
        ):
            browser.visit(f"http://{domain}/page/{i % 7}")

    def build(self) -> List[SheriffAddon]:
        cfg = self.config
        world = self.sheriff.world
        for country in self._country_plan():
            geocountry = world.geodb.country(country)
            city = self._rng.choice(geocountry.cities) if geocountry.cities else None
            browser = world.make_browser(country, city)
            self._browse_history(browser)
            for domain in cfg.login_domains:
                if (
                    world.internet.has_domain(domain)
                    and self._rng.random() < cfg.login_fraction
                ):
                    browser.login(domain)
            addon = self.sheriff.install_addon(
                browser,
                consent=True,
                history_donation_opt_in=self._rng.random() < cfg.donate_fraction,
            )
            self.addons.append(addon)
            self.by_country.setdefault(country, []).append(addon)
        return self.addons

    # -- queries -------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return len(self.addons)

    def countries(self) -> List[str]:
        return sorted(self.by_country)

    def donors(self) -> List[SheriffAddon]:
        return [a for a in self.addons if a.history_donation_opt_in]

    def users_in(self, country: str) -> List[SheriffAddon]:
        return list(self.by_country.get(country, []))

    def pick_user(self, rng: random.Random) -> SheriffAddon:
        """Requesters follow the Table 2 mix because users already do."""
        return rng.choice(self.addons)
