"""The synthetic content web and the Alexa e-commerce top-400.

The "Alexa top domains" list of Sect. 4 is a global popularity ranking
of content sites.  :class:`ContentWeb` registers a configurable number
of content domains with Zipf popularity and per-site tracker subsets;
its ranking is the reference list for "Alexa top domains" profile
vectors, while the empirical ranking of a user base provides the
"users top domains" alternative (Fig. 8(a)).

:func:`build_alexa_ecommerce` creates the Sect. 7.6 roster: the top-400
most popular e-commerce sites, none of which returns different prices
within the same country (a share of them still does location-based PD —
which is exactly what that experiment must *not* flag).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.web.catalog import make_catalog
from repro.web.internet import ContentSite, Internet
from repro.web.pricing import CountryMultiplierPricing, UniformPricing, stable_rng
from repro.web.store import EStore
from repro.web.trackers import TrackerEcosystem


class ContentWeb:
    """Content domains with a designed global popularity ranking."""

    CATEGORY_WORDS = (
        "news", "sports", "video", "mail", "social", "wiki", "weather",
        "music", "games", "travel", "finance", "recipes", "tech", "cars",
        "fashion", "health", "movies", "photo", "blog", "forum",
    )

    def __init__(
        self,
        internet: Internet,
        ecosystem: TrackerEcosystem,
        n_domains: int = 150,
        seed: int = 1,
        zipf_s: float = 1.1,
    ) -> None:
        rng = random.Random(seed)
        self.domains: List[str] = []
        self.popularity: Dict[str, float] = {}
        tracker_domains = ecosystem.domains()
        for rank in range(n_domains):
            word = self.CATEGORY_WORDS[rank % len(self.CATEGORY_WORDS)]
            domain = f"{word}{rank:03d}.web"
            trackers = tuple(
                t for t in tracker_domains if rng.random() < 0.4
            )
            internet.register(ContentSite(domain, tracker_domains=trackers))
            self.domains.append(domain)
            self.popularity[domain] = 1.0 / (rank + 1) ** zipf_s
        self._weights = [self.popularity[d] for d in self.domains]

    def alexa_top(self, m: int) -> List[str]:
        """The top-m domains by designed global popularity."""
        if m > len(self.domains):
            raise ValueError(f"only {len(self.domains)} content domains exist")
        return self.domains[:m]

    def sample_domains(self, rng: random.Random, n: int,
                       bias: Optional[Dict[str, float]] = None) -> List[str]:
        """Draw n visit targets from the popularity distribution.

        ``bias`` multiplies selected domains' weights — how a user's
        personal interests skew an otherwise global distribution.
        """
        weights = list(self._weights)
        if bias:
            for i, domain in enumerate(self.domains):
                weights[i] *= bias.get(domain, 1.0)
        return rng.choices(self.domains, weights=weights, k=n)


def build_alexa_ecommerce(
    internet: Internet,
    geodb,
    rates,
    n: int = 400,
    seed: int = 7,
    location_pd_fraction: float = 0.05,
    catalog_size: int = 6,
) -> List[EStore]:
    """The Alexa top-400 e-commerce sites (Sect. 7.6).

    A small share applies cross-border multipliers (location-based PD is
    common); none varies prices within a country.
    """
    rng = random.Random(seed)
    countries = ["US", "GB", "DE", "FR", "ES", "JP", "CN", "IT", "NL", "CA"]
    stores = []
    for i in range(n):
        domain = f"alexa-shop-{i:03d}.example"
        country = rng.choice(countries)
        if rng.random() < location_pd_fraction:
            factor_rng = stable_rng("alexa-pd", domain)
            pricing = CountryMultiplierPricing(
                {c: 1.0 + factor_rng.uniform(0.05, 0.4)
                 for c in rng.sample(countries, 3)}
            )
        else:
            pricing = UniformPricing()
        store = EStore(
            domain=domain,
            country_code=country,
            catalog=make_catalog(domain, size=catalog_size, rng=rng),
            pricing=pricing,
            geodb=geodb,
            rates=rates,
        )
        internet.register(store)
        stores.append(store)
    return stores
