"""The journey drill: a seeded queued run that provably steals a job.

``repro journey`` and the CI observability artifact both need a run
where the interesting things *happen*: jobs are admitted through the
queue tier, wait, get stolen across Measurement servers, and land rows
— all under full telemetry so one ``trace_id`` reconstructs the whole
causal tree.  This module packages that run.

The recipe mirrors the queue-equivalence property test
(``tests/core/test_queue_equivalence.py``): three waves of three
submissions against a two-server fleet with ``queue_steal_threshold=1``,
where ``ms-1`` is marked offline while each wave piles onto ``ms-0``
and resurrected just before the drain — so imbalance steals fire
deterministically, and the run stays row-identical to the undisturbed
direct run (that equivalence is the tested property; this module only
re-stages it with the journey plane watching).

:func:`run_journey` returns the raw run; :func:`run_slo_drill` runs it
under the self-healing layer with burn-rate probes armed, ticking the
supervisor after every wave, and reports which SLO alerts fired — the
``repro slo`` verb and the burn-rate acceptance test both drive it,
once clean and once under an injected latency fault
(``latency_fault=True``), expecting silence and a page respectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.sheriff import PriceSheriff, SheriffWorld
from repro.obs import Telemetry
from repro.workloads.stores import build_named_stores, uniform_store_specs

__all__ = [
    "JOURNEY_IPC_SITES",
    "JourneyConfig",
    "JourneyRun",
    "run_journey",
    "run_slo_drill",
]

#: a reduced IPC fleet keeps the drill fast while still fanning out
#: across countries (the full deployment uses all 30 sites)
JOURNEY_IPC_SITES: Tuple[Tuple[str, str, float], ...] = (
    ("ES", "Madrid", 1.0),
    ("ES", "Barcelona", 1.0),
    ("US", "Tennessee", 1.0),
    ("CA", "Ontario", 1.0),
    ("GB", "London", 1.0),
    ("FR", "Paris", 1.0),
    ("JP", "Tokyo", 1.0),
    ("DE", "Berlin", 1.0),
)


@dataclass
class JourneyConfig:
    """Knobs of one journey drill (defaults force at least one steal)."""

    seed: int = 71
    store_seed: int = 74
    n_stores: int = 6
    n_servers: int = 2
    n_initiators: int = 3
    waves: int = 3
    #: threshold 1 makes any depth imbalance eligible for a steal
    queue_steal_threshold: int = 1
    #: take ``ms-1`` down while each wave is admitted, bring it back
    #: before the drain — the forced-steal choreography
    disrupt: bool = True
    #: ``False`` routes submissions through the direct tier instead of
    #: the queued one — the equivalence baseline
    use_queue: bool = True
    #: ``False`` runs with the null telemetry: the row-identity
    #: (tracing on/off) acceptance check flips only this knob
    telemetry_enabled: bool = True
    db_backend: Optional[str] = None
    chaos_profile: Optional[str] = None
    chaos_seed: int = 0
    #: inject a pure latency fault: every IPC vantage point becomes a
    #: chronically overloaded node (Sect. 5's PlanetLab pathology),
    #: stretching each fetch by ``fault_slowdown`` on the simulated
    #: timeline without losing a single row — slow, not broken, so the
    #: latency budget burns while availability stays perfect
    latency_fault: bool = False
    #: the injected slowdown factor (kept under the Measurement server's
    #: 4.0 proxy-timeout budget so fetches crawl instead of timing out)
    fault_slowdown: float = 3.9
    #: simulated seconds between waves
    wave_gap_s: float = 3600.0


@dataclass
class JourneyRun:
    """Everything the drill produced, with the telemetry still warm."""

    sheriff: PriceSheriff
    world: SheriffWorld
    job_ids: List[str] = field(default_factory=list)
    stolen_job_ids: List[str] = field(default_factory=list)
    steals: Dict[str, int] = field(default_factory=dict)
    rows: int = 0
    supervisor: object = None

    @property
    def telemetry(self) -> Telemetry:
        return self.sheriff.telemetry


def run_journey(
    config: Optional[JourneyConfig] = None,
    supervisor_factory=None,
) -> JourneyRun:
    """Run the seeded forced-steal drill under full telemetry.

    ``supervisor_factory`` (sheriff → supervisor), when given, stands up
    the self-healing layer before any wave and ticks it after each
    wave's drain — the hook :func:`run_slo_drill` uses to arm burn-rate
    probes without this module importing the ops layer.
    """
    config = config if config is not None else JourneyConfig()
    world = SheriffWorld.create(seed=config.seed)
    specs = uniform_store_specs(config.n_stores, seed=config.store_seed)
    stores = build_named_stores(world, specs)
    ipc_sites = (
        tuple(
            (country, city, config.fault_slowdown)
            for country, city, _ in JOURNEY_IPC_SITES
        )
        if config.latency_fault
        else JOURNEY_IPC_SITES
    )
    sheriff = PriceSheriff(
        world,
        n_measurement_servers=config.n_servers,
        ipc_sites=ipc_sites,
        dispatch_policy="round_robin",
        db_backend=config.db_backend,
        db_shards=config.n_servers,
        job_queue=config.use_queue,
        queue_steal_threshold=config.queue_steal_threshold,
        telemetry=Telemetry(enabled=config.telemetry_enabled),
        chaos_profile=config.chaos_profile,
        chaos_seed=config.chaos_seed,
    )
    # same-country peers so PPC fan-out has volunteers to ask
    for city in ("Madrid", "Barcelona", "Valencia"):
        sheriff.install_addon(world.make_browser("ES", city))
    initiators = [
        sheriff.install_addon(
            world.make_browser("ES", "Madrid"), serve_as_ppc=False
        )
        for _ in range(config.n_initiators)
    ]
    urls = []
    for spec in specs:
        store = stores[spec.domain]
        urls.extend(
            store.product_url(p.product_id) for p in store.catalog.products
        )

    supervisor = (
        supervisor_factory(sheriff) if supervisor_factory is not None else None
    )
    run = JourneyRun(sheriff=sheriff, world=world, supervisor=supervisor)
    index = 0
    for _ in range(config.waves):
        if config.disrupt:
            sheriff.distributor.mark_offline("ms-1")
        wave = []
        for addon in initiators:
            url = urls[index % len(urls)]
            index += 1
            wave.append((addon, addon.submit_price_check(url)))
        if config.disrupt:
            sheriff.distributor.heartbeat("ms-1", world.clock.now)
        for addon, pending in wave:
            run.job_ids.append(pending.handle.job_id)
            result = addon.collect(pending)
            run.rows += len(result.rows)
        if supervisor is not None:
            supervisor.tick()
        world.clock.advance(config.wave_gap_s)

    run.steals = (
        dict(sheriff.job_queue.steals)
        if sheriff.job_queue is not None
        else {}
    )
    flights = sheriff.telemetry.flights
    run.stolen_job_ids = [
        job_id
        for job_id in run.job_ids
        if any(e.kind == "steal" for e in flights.events_for(job_id))
    ]
    return run


def run_slo_drill(
    config: Optional[JourneyConfig] = None,
    max_burn_rate: float = 1.0,
    check_latency_threshold: float = 2.5,
    check_latency_objective: float = 0.90,
):
    """The journey drill under armed SLO burn-rate probes.

    Returns ``(run, report, alerts)``: the :class:`JourneyRun` (with
    ``run.supervisor`` live), the SLO engine's compliance report, and
    the ``slo/*`` audit events the supervisor recorded — empty on a
    clean run, non-empty when an injected latency fault burns an error
    budget faster than ``max_burn_rate``.

    The drill pins ``check-latency`` at 2.5 simulated seconds: above
    the clean run's slowest check (~1.6s) and below the slowest check
    of a ``latency_fault=True`` run (~4x slower), and exactly a
    histogram bucket bound, so the conservative ``count_le`` good-event
    count discriminates the two runs crisply.
    """
    from repro.obs.slo import SLOEngine, build_default_slos
    from repro.ops.wiring import build_supervisor

    def factory(sheriff):
        engine = build_default_slos(
            SLOEngine(sheriff.telemetry.registry, sheriff.world.clock),
            check_latency_threshold=check_latency_threshold,
            check_latency_objective=check_latency_objective,
        )
        return build_supervisor(
            sheriff, slo_engine=engine, slo_max_burn_rate=max_burn_rate
        )

    run = run_journey(config, supervisor_factory=factory)
    engine = run.supervisor.slo_engine
    report = engine.report()
    alerts = [
        event
        for event in run.supervisor.audit.events(kind="component_down")
        if event.component.startswith("slo/")
    ]
    return run, report, alerts
