"""Workload generators: the experiments' worlds, users, and drivers.

* :mod:`repro.workloads.alexa` — the synthetic content web (the "Alexa
  top domains" popularity ranking) and the Alexa top-400 e-commerce
  roster of Sect. 7.6;
* :mod:`repro.workloads.population` — the geo-distributed user base with
  Zipf-like browsing histories (Table 2 country mix);
* :mod:`repro.workloads.stores` — the calibrated retailer roster: every
  domain named in the paper with a pricing policy tuned to reproduce its
  reported behaviour;
* :mod:`repro.workloads.deployment` — the live-deployment simulation
  (Sect. 6) and the Fig. 5 adoption model;
* :mod:`repro.workloads.crawlstudy` — the systematic study drivers
  (Sect. 7): multi-country crawls, the four-country case studies, the
  temporal study, the Alexa-400 sweep;
* :mod:`repro.workloads.perfmodel` — the Table 1 queueing model of the
  old and new back-end architectures;
* :mod:`repro.workloads.cryptobench` — the Fig. 8(c) crypto benchmark:
  naive vs fastexp arithmetic, 1 vs N workers, per protocol phase;
* :mod:`repro.workloads.journey` — the seeded forced-steal drill behind
  ``repro journey`` / ``repro slo``: one run whose jobs are provably
  admitted, queued, stolen, and persisted under full telemetry;
* :mod:`repro.workloads.benchsuite` — the unified benchmark suite
  behind ``repro bench``: every benchmark, one merged report, every
  regression gate in one exit code.
"""

from repro.workloads.alexa import ContentWeb, build_alexa_ecommerce
from repro.workloads.population import Population, PopulationConfig
from repro.workloads.stores import build_named_stores, named_store_specs
from repro.workloads.deployment import (
    DeploymentConfig,
    DeploymentDataset,
    LiveDeployment,
    adoption_series,
)
from repro.workloads.crawlstudy import (
    CrawlStudy,
    four_country_case_study,
    temporal_study,
)
from repro.workloads.perfmodel import PerformanceModel, PerfRow, run_table1
from repro.workloads.cryptobench import CryptoBenchConfig, run_cryptobench

__all__ = [
    "ContentWeb",
    "build_alexa_ecommerce",
    "Population",
    "PopulationConfig",
    "build_named_stores",
    "named_store_specs",
    "DeploymentConfig",
    "DeploymentDataset",
    "LiveDeployment",
    "adoption_series",
    "CrawlStudy",
    "four_country_case_study",
    "temporal_study",
    "PerformanceModel",
    "PerfRow",
    "run_table1",
    "CryptoBenchConfig",
    "run_cryptobench",
]
