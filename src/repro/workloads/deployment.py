"""The live deployment simulation (Sect. 6) and the Fig. 5 adoption model.

:class:`LiveDeployment` stands up the full system — content web, the
calibrated retailer roster plus the honest long tail, the 30-node IPC
fleet, four Measurement servers, a geo-distributed population — and
replays the deployment window: users issue price checks against stores
drawn by popularity, the clock advances between requests, and an
optional clustering round builds doppelgangers part-way through.

The paper's window runs August 2015 – September 2016 with 1265 users
and >5700 requests over 1994 domains; the default configuration is a
faithful but smaller instance (the same phenomena at ~1/8 scale) so the
whole evaluation can be regenerated in minutes —
:meth:`DeploymentConfig.paper_scale` gives the full-size parameters.
"""

from __future__ import annotations

import dataclasses
import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.clients.ipc import DEFAULT_IPC_SITES
from repro.core.addon import PriceCheckFailed, PriceSelectionError
from repro.core.coordinator import RequestRejected
from repro.core.errors import InvalidConfig
from repro.core.pricecheck import PriceCheckResult
from repro.core.sheriff import PriceSheriff, SheriffWorld
from repro.net.events import SECONDS_PER_DAY
from repro.net.faults import CHAOS_PROFILES
from repro.obs import Telemetry
from repro.ops import HealReport, Supervisor, build_supervisor
from repro.workloads.alexa import ContentWeb
from repro.workloads.population import Population, PopulationConfig
from repro.workloads.stores import (
    StoreSpec,
    build_named_stores,
    extra_pd_store_specs,
    named_store_specs,
    uniform_store_specs,
)


@dataclass
class DeploymentConfig:
    """Knobs of one live-deployment run."""

    seed: int = 2017
    n_users: int = 150
    n_requests: int = 600
    n_extra_pd_stores: int = 20
    n_uniform_stores: int = 60
    n_content_domains: int = 120
    n_measurement_servers: int = 4
    duration_days: float = 390.0
    ipc_sites: Sequence[Tuple[str, str, float]] = DEFAULT_IPC_SITES
    enable_doppelgangers: bool = False
    population: Optional[PopulationConfig] = None
    #: extra checks of the flagship products users were famously curious
    #: about (the Phase One IQ280 case of Sect. 6.2)
    spotlight_checks: int = 3
    spotlight_products: Tuple[Tuple[str, str], ...] = (
        ("digitalrev.com", "digitalrev-iq280"),
    )
    #: named fault-injection profile from repro.net.faults.CHAOS_PROFILES
    #: (None = clean network) and the seed its RNG runs from
    chaos_profile: Optional[str] = None
    chaos_seed: int = 0
    #: minimum vantage points per price check before the job is failed
    quorum: int = 1
    #: pipelined price-check engine knobs (rows are identical either
    #: way; these only shape the simulated timeline / cache behavior)
    pipelined: bool = True
    max_fetch_workers: int = 8
    page_cache_ttl: float = 0.0
    #: enable the telemetry plane (metrics registry + sim-clock tracer);
    #: purely observational — rows are identical either way (tested)
    telemetry: bool = False
    #: storage engine behind the Database server: "memory" (default),
    #: "sqlite", or None to defer to the REPRO_DB_BACKEND environment
    #: variable.  Rows are byte-identical across engines (tested).
    db_backend: Optional[str] = None
    #: shard the Database layer by domain across this many servers
    #: (1 = the paper's single-server deployment)
    db_shards: int = 1
    #: run the self-healing operations layer (repro.ops): a Supervisor
    #: ticks once per request and heals failed components; supervision
    #: is RNG-free so rows are identical with it on or off (tested)
    supervised: bool = False
    #: persist the supervisor's audit trail as JSON lines here
    audit_path: Optional[str] = None
    #: put the queued measurement tier (repro.core.jobqueue) in front of
    #: the Measurement servers: admission control, work stealing, and
    #: dead-lettering.  Rows are identical queued or direct (tested).
    job_queue: bool = False
    #: admission limit of the queue tier's outbox (jobs beyond this are
    #: shed with a typed QueueSaturated carrying a retry-after hint)
    queue_depth: int = 256
    #: backlog imbalance (in jobs) that triggers a work steal between
    #: Measurement servers; None disables stealing entirely
    queue_steal_threshold: Optional[int] = 16
    #: single-pass Tags-Path extraction with the whole-page memo
    #: (False = the legacy per-candidate re-walk; rows are identical
    #: either way, pinned by the extraction equivalence tests)
    use_fast_extract: bool = True
    #: messaging backend between components: "sim" (deterministic,
    #: in-process — the Tier-1 default), "socket" (real asyncio TCP on
    #: the loopback; the row-identity property holds, tested), or
    #: "direct" (legacy direct method calls, no envelopes)
    transport: str = "sim"

    @classmethod
    def paper_scale(cls) -> "DeploymentConfig":
        """The full Sect. 6 scale (slow: hours of simulation)."""
        return cls(
            n_users=1265,
            n_requests=5700,
            n_extra_pd_stores=47,
            n_uniform_stores=1900,
            n_content_domains=400,
        )

    @classmethod
    def test_scale(cls) -> "DeploymentConfig":
        """A minimal instance for unit tests."""
        return cls(
            n_users=40,
            n_requests=80,
            n_extra_pd_stores=5,
            n_uniform_stores=10,
            n_content_domains=40,
            ipc_sites=DEFAULT_IPC_SITES[:10],
        )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; ``from_dict(cfg.to_dict())`` round-trips."""
        data: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "population" and value is not None:
                value = {
                    pf.name: _jsonify(getattr(value, pf.name))
                    for pf in dataclasses.fields(value)
                }
            else:
                value = _jsonify(value)
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeploymentConfig":
        """Build and validate a config from a plain dict (JSON-loaded).

        Raises :class:`~repro.core.errors.InvalidConfig` on unknown
        keys — including inside the nested ``population`` section — and
        on out-of-range values, each with a message naming the key.
        """
        if not isinstance(data, dict):
            raise InvalidConfig(
                f"deployment config must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise InvalidConfig(
                f"unknown deployment config key(s): {', '.join(unknown)}"
            )
        kwargs: Dict[str, Any] = dict(data)
        population = kwargs.get("population")
        if isinstance(population, dict):
            kwargs["population"] = _population_from_dict(population)
        elif population is not None and not isinstance(
            population, PopulationConfig
        ):
            raise InvalidConfig(
                "population must be a JSON object (or null)"
            )
        if "ipc_sites" in kwargs:
            kwargs["ipc_sites"] = _parse_ipc_sites(kwargs["ipc_sites"])
        if "spotlight_products" in kwargs:
            kwargs["spotlight_products"] = _parse_spotlight(
                kwargs["spotlight_products"]
            )
        config = cls(**kwargs)
        config.validate()
        return config

    def validate(self) -> "DeploymentConfig":
        """Range-check every knob; raises ``InvalidConfig`` on the first
        violation.  Returns self so call sites can chain."""
        for name, minimum in (
            ("n_users", 1),
            ("n_requests", 0),
            ("n_extra_pd_stores", 0),
            ("n_uniform_stores", 0),
            ("n_content_domains", 1),
            ("n_measurement_servers", 1),
            ("spotlight_checks", 0),
            ("quorum", 1),
            ("max_fetch_workers", 1),
            ("db_shards", 1),
            ("queue_depth", 1),
        ):
            _require_int(name, getattr(self, name), minimum)
        _require_int("seed", self.seed, None)
        _require_int("chaos_seed", self.chaos_seed, None)
        if not isinstance(self.duration_days, (int, float)) or isinstance(
            self.duration_days, bool
        ) or self.duration_days <= 0:
            raise InvalidConfig(
                f"duration_days must be a positive number, got "
                f"{self.duration_days!r}"
            )
        if not isinstance(self.page_cache_ttl, (int, float)) or isinstance(
            self.page_cache_ttl, bool
        ) or self.page_cache_ttl < 0:
            raise InvalidConfig(
                f"page_cache_ttl must be >= 0, got {self.page_cache_ttl!r}"
            )
        for name in (
            "enable_doppelgangers", "pipelined", "telemetry",
            "supervised", "job_queue", "use_fast_extract",
        ):
            if not isinstance(getattr(self, name), bool):
                raise InvalidConfig(
                    f"{name} must be a boolean, got {getattr(self, name)!r}"
                )
        if self.chaos_profile is not None and (
            self.chaos_profile not in CHAOS_PROFILES
        ):
            raise InvalidConfig(
                f"chaos_profile must be one of "
                f"{sorted(CHAOS_PROFILES)} or null, got "
                f"{self.chaos_profile!r}"
            )
        if self.transport not in ("sim", "socket", "direct"):
            raise InvalidConfig(
                f"transport must be 'sim', 'socket', or 'direct', got "
                f"{self.transport!r}"
            )
        if self.db_backend not in (None, "memory", "sqlite"):
            raise InvalidConfig(
                f"db_backend must be 'memory', 'sqlite', or null, got "
                f"{self.db_backend!r}"
            )
        if self.audit_path is not None and not isinstance(
            self.audit_path, str
        ):
            raise InvalidConfig(
                f"audit_path must be a string or null, got "
                f"{self.audit_path!r}"
            )
        if self.queue_steal_threshold is not None:
            _require_int(
                "queue_steal_threshold", self.queue_steal_threshold, 1
            )
        return self


def _jsonify(value: Any) -> Any:
    """Tuples → lists so ``to_dict`` output survives a JSON round trip."""
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    if isinstance(value, list):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    return value


def _require_int(name: str, value: Any, minimum: Optional[int]) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise InvalidConfig(f"{name} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise InvalidConfig(f"{name} must be >= {minimum}, got {value}")


def _parse_ipc_sites(raw: Any) -> Tuple[Tuple[str, str, float], ...]:
    if not isinstance(raw, (list, tuple)):
        raise InvalidConfig(
            "ipc_sites must be a list of [country, city, weight]"
        )
    sites = []
    for entry in raw:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 3
            or not isinstance(entry[0], str)
            or not isinstance(entry[1], str)
            or not isinstance(entry[2], (int, float))
            or isinstance(entry[2], bool)
        ):
            raise InvalidConfig(
                f"ipc_sites entries must be [country, city, weight], "
                f"got {entry!r}"
            )
        sites.append((entry[0], entry[1], float(entry[2])))
    return tuple(sites)


def _parse_spotlight(raw: Any) -> Tuple[Tuple[str, str], ...]:
    if not isinstance(raw, (list, tuple)):
        raise InvalidConfig(
            "spotlight_products must be a list of [domain, product_id]"
        )
    products = []
    for entry in raw:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not all(isinstance(part, str) for part in entry)
        ):
            raise InvalidConfig(
                f"spotlight_products entries must be [domain, product_id], "
                f"got {entry!r}"
            )
        products.append((entry[0], entry[1]))
    return tuple(products)


def _population_from_dict(data: Dict[str, Any]) -> PopulationConfig:
    known = {f.name for f in dataclasses.fields(PopulationConfig)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise InvalidConfig(
            f"unknown population config key(s): {', '.join(unknown)}"
        )
    kwargs: Dict[str, Any] = dict(data)
    if "history_visits" in kwargs:
        visits = kwargs["history_visits"]
        if (
            not isinstance(visits, (list, tuple))
            or len(visits) != 2
            or not all(
                isinstance(v, int) and not isinstance(v, bool) for v in visits
            )
        ):
            raise InvalidConfig(
                f"population.history_visits must be [low, high], got {visits!r}"
            )
        kwargs["history_visits"] = (visits[0], visits[1])
    if "login_domains" in kwargs:
        domains = kwargs["login_domains"]
        if not isinstance(domains, (list, tuple)) or not all(
            isinstance(d, str) for d in domains
        ):
            raise InvalidConfig(
                f"population.login_domains must be a list of domains, "
                f"got {domains!r}"
            )
        kwargs["login_domains"] = tuple(domains)
    for name in ("n_users", "seed", "n_personas", "persona_domains_each",
                 "persona_pool_top", "n_personal_domains"):
        if name in kwargs:
            _require_int(f"population.{name}", kwargs[name],
                         1 if name == "n_users" else None)
    for name in ("donate_fraction", "login_fraction"):
        if name in kwargs:
            value = kwargs[name]
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ) or not 0.0 <= value <= 1.0:
                raise InvalidConfig(
                    f"population.{name} must be in [0, 1], got {value!r}"
                )
    return PopulationConfig(**kwargs)


@dataclass
class DeploymentDataset:
    """Everything a run produced, ready for the Sect. 6 analyses."""

    config: DeploymentConfig
    world: SheriffWorld
    sheriff: PriceSheriff
    population: Population
    results: List[PriceCheckResult]
    failures: Counter
    request_countries: Counter
    #: price checks attempted / ending in an explicit failure report
    #: (rejections, selection errors, exhausted retries, lost quorum)
    n_attempted: int = 0
    n_explicit_failures: int = 0
    #: the operations layer, when the run was supervised (else None)
    supervisor: Optional["Supervisor"] = None
    #: outcome of the end-of-run healing convergence loop
    heal_report: Optional["HealReport"] = None

    @property
    def n_domains_checked(self) -> int:
        return len({r.domain for r in self.results})

    @property
    def n_products_checked(self) -> int:
        return len({r.url for r in self.results})

    @property
    def n_responses(self) -> int:
        return sum(len(r.rows) for r in self.results)

    @property
    def n_resolved(self) -> int:
        """Checks that ended in a terminal outcome: a result page or an
        explicit failure report — never a hang or a silent drop."""
        return len(self.results) + self.n_explicit_failures

    @property
    def resolution_rate(self) -> float:
        if self.n_attempted == 0:
            return 1.0
        return self.n_resolved / self.n_attempted

    def results_for_domain(self, domain: str) -> List[PriceCheckResult]:
        return [r for r in self.results if r.domain == domain]


class LiveDeployment:
    """Builds the world and replays the deployment window."""

    def __init__(self, config: Optional[DeploymentConfig] = None) -> None:
        self.config = config if config is not None else DeploymentConfig()
        cfg = self.config
        self._rng = random.Random(cfg.seed)
        self.world = SheriffWorld.create(seed=cfg.seed)
        self.content_web = ContentWeb(
            self.world.internet, self.world.ecosystem,
            n_domains=cfg.n_content_domains, seed=cfg.seed + 1,
        )
        self.specs: List[StoreSpec] = (
            named_store_specs()
            + extra_pd_store_specs(cfg.n_extra_pd_stores, seed=cfg.seed + 2)
            + uniform_store_specs(cfg.n_uniform_stores, seed=cfg.seed + 3)
        )
        self.stores = build_named_stores(self.world, self.specs)
        self.sheriff = PriceSheriff(
            self.world,
            n_measurement_servers=cfg.n_measurement_servers,
            ipc_sites=cfg.ipc_sites,
            chaos_profile=cfg.chaos_profile,
            chaos_seed=cfg.chaos_seed,
            quorum=cfg.quorum,
            pipelined=cfg.pipelined,
            max_fetch_workers=cfg.max_fetch_workers,
            page_cache_ttl=cfg.page_cache_ttl,
            telemetry=Telemetry() if cfg.telemetry else None,
            db_backend=cfg.db_backend,
            db_shards=cfg.db_shards,
            job_queue=cfg.job_queue,
            queue_depth=cfg.queue_depth,
            queue_steal_threshold=cfg.queue_steal_threshold,
            transport=cfg.transport,
            use_fast_extract=cfg.use_fast_extract,
        )
        self.population = Population(
            self.sheriff, self.content_web,
            cfg.population if cfg.population is not None
            else PopulationConfig(n_users=cfg.n_users, seed=cfg.seed + 4),
        )
        self._store_weights = [s.popularity for s in self.specs]
        #: the self-healing layer — built only when asked for; its ticks
        #: are RNG-free, so rows match an unsupervised run exactly
        self.supervisor: Optional[Supervisor] = (
            build_supervisor(self.sheriff, audit_path=cfg.audit_path)
            if cfg.supervised
            else None
        )

    # -- request generation ------------------------------------------------
    def _pick_store(self) -> StoreSpec:
        return self._rng.choices(self.specs, weights=self._store_weights, k=1)[0]

    def run(self) -> DeploymentDataset:
        cfg = self.config
        self.population.build()
        results: List[PriceCheckResult] = []
        failures: Counter = Counter()
        request_countries: Counter = Counter()
        attempted = 0
        explicit_failures = 0
        gap_seconds = cfg.duration_days * SECONDS_PER_DAY / max(1, cfg.n_requests)

        for _ in range(cfg.n_requests):
            self.world.clock.advance(gap_seconds * self._rng.uniform(0.5, 1.5))
            addon = self.population.pick_user(self._rng)
            spec = self._pick_store()
            store = self.stores[spec.domain]
            product = store.catalog.sample(self._rng, 1)[0]
            url = store.product_url(product.product_id)
            attempted += 1
            try:
                result = addon.check_price(url)
            except (RequestRejected, PriceSelectionError, PriceCheckFailed):
                failures[spec.domain] += 1
                explicit_failures += 1
                self._supervision_tick()
                continue
            results.append(result)
            request_countries[addon.browser.location.country] += 1
            self._supervision_tick()

        for domain, product_id in cfg.spotlight_products:
            store = self.stores.get(domain)
            if store is None or store.catalog.get(product_id) is None:
                continue
            url = store.product_url(product_id)
            for _ in range(cfg.spotlight_checks):
                self.world.clock.advance(gap_seconds * self._rng.uniform(0.5, 1.5))
                addon = self.population.pick_user(self._rng)
                attempted += 1
                try:
                    result = addon.check_price(url)
                except (RequestRejected, PriceSelectionError, PriceCheckFailed):
                    failures[domain] += 1
                    explicit_failures += 1
                    self._supervision_tick()
                    continue
                results.append(result)
                request_countries[addon.browser.location.country] += 1
                self._supervision_tick()

        if cfg.enable_doppelgangers:
            reference = self.content_web.alexa_top(
                min(50, len(self.content_web.domains))
            )
            self.sheriff.run_doppelganger_clustering(reference, max_iterations=4)

        # End-of-run convergence: let the supervisor finish healing
        # whatever the chaos schedule left flapped.  All rows are
        # already persisted, so advancing the clock here cannot change
        # the dataset — only the components' final health.
        heal_report = None
        if self.supervisor is not None:
            heal_report = self.supervisor.heal(
                max_seconds=3600.0, step=15.0,
                pre_tick=self.sheriff.coordinator.chaos_tick,
            )

        return DeploymentDataset(
            config=cfg,
            world=self.world,
            sheriff=self.sheriff,
            population=self.population,
            results=results,
            failures=failures,
            request_countries=request_countries,
            n_attempted=attempted,
            n_explicit_failures=explicit_failures,
            supervisor=self.supervisor,
            heal_report=heal_report,
        )

    def _supervision_tick(self) -> None:
        """One supervision sweep after a request resolves (RNG-free)."""
        if self.supervisor is not None:
            self.supervisor.tick()


# -- Fig. 5: add-on adoption over time -------------------------------------

@dataclass
class AdoptionSeries:
    """Daily downloads and active users of the add-on (Fig. 5)."""

    days: List[int]
    daily_downloads: List[float]
    active_users: List[float]

    @property
    def total_downloads(self) -> float:
        return sum(self.daily_downloads)

    def spike_days(self, threshold_factor: float = 5.0) -> List[int]:
        """Days whose downloads exceed ``threshold_factor`` × median."""
        ordered = sorted(self.daily_downloads)
        median = ordered[len(ordered) // 2]
        floor = max(1.0, median) * threshold_factor
        return [d for d, v in zip(self.days, self.daily_downloads) if v > floor]


#: (day, amplitude) of the three press events the paper describes —
#: articles in the popular press and the Swiss national TV documentary.
PRESS_EVENTS: Tuple[Tuple[int, float], ...] = ((60, 120.0), (180, 310.0), (300, 190.0))


def adoption_series(
    n_days: int = 420,
    seed: int = 9,
    base_rate: float = 2.0,
    press_events: Sequence[Tuple[int, float]] = PRESS_EVENTS,
    decay_days: float = 6.0,
    retention_days: float = 90.0,
    active_fraction: float = 0.35,
) -> AdoptionSeries:
    """Model the Fig. 5 time series: a trickle plus three press spikes.

    Downloads: Poisson base rate plus exponentially decaying bursts after
    each press event.  Active users: installs with exponential retention
    times ``retention_days`` on average, of which ``active_fraction``
    actually use the add-on.
    """
    rng = random.Random(seed)
    days = list(range(n_days))
    downloads: List[float] = []
    for day in days:
        rate = base_rate
        for event_day, amplitude in press_events:
            if day >= event_day:
                rate += amplitude * math.exp(-(day - event_day) / decay_days)
        # Poisson draw via the inverse method is overkill; a jittered
        # rate reads the same on the figure
        downloads.append(max(0.0, rng.gauss(rate, math.sqrt(max(rate, 1.0)))))

    active: List[float] = []
    current = 0.0
    for day in days:
        churn = current / retention_days
        current = current + active_fraction * downloads[day] - churn
        active.append(max(0.0, current))
    return AdoptionSeries(days=days, daily_downloads=downloads, active_users=active)
