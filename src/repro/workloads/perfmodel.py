"""The Table 1 performance model: old vs new back-end architecture.

Sect. 5 stress-tests both versions with Selenium-driven client browsers
and reports response time per task and the derivable maximum daily
request rate.  This discrete-event model captures the two mechanisms
the paper blames for the old version's collapse near 10 parallel tasks
(App. 10.2.1):

* **CPU context switching** — per-task processing time scales with the
  number of tasks concurrently on the server; the slimmed-down new
  Measurement server has a smaller CPU footprint per task;
* **the integrated database** — the old version serializes every task
  through an on-box RDBMS whose per-operation time also degrades with
  concurrency (lock contention + buffer pressure); the new version
  talks to the shared Database server through a warm connection pool
  with stored procedures, making DB time small and load-insensitive.

Each "client" is a Selenium browser keeping ``streams_per_client``
price checks in flight (closed loop).  Proxy fetch time is
load-independent — it is bounded by the slowest proxy, occasionally a
lagging PlanetLab node, which is also why the *new* version's response
time floors around one minute.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.net.events import EventLoop

#: calibrated service-time constants (seconds)
FETCH_MEAN = 46.0
FETCH_SIGMA = 0.18
SLOW_PROXY_PROB = 0.12
SLOW_PROXY_EXTRA = (10.0, 35.0)

OLD_CPU_PER_TASK = 4.0
NEW_CPU_PER_TASK = 3.0
OLD_DB_BASE = 15.0
OLD_DB_LOAD_FACTOR = 0.14  # hold time grows with concurrent tasks
NEW_DB_TIME = 2.0
OLD_CRASH_TASKS = 15  # beyond this the old server falls over (Sect. 5)


class ServerCrashed(RuntimeError):
    """The old Measurement server collapsed under load."""


@dataclass
class PerfRow:
    """One row of Table 1."""

    version: str
    n_clients: int
    n_servers: int
    avg_parallel_tasks: float
    response_minutes: float
    max_daily_requests: float

    def as_tuple(self) -> Tuple[str, int, int, float, float, int]:
        return (
            self.version,
            self.n_clients,
            self.n_servers,
            round(self.avg_parallel_tasks, 1),
            round(self.response_minutes, 2),
            int(round(self.max_daily_requests, -2)),
        )


class _Server:
    """One Measurement server instance in the model."""

    def __init__(self, name: str, version: str, loop: EventLoop,
                 rng: random.Random, speed_factor: float = 1.0) -> None:
        self.name = name
        self.version = version
        self.loop = loop
        self.rng = rng
        #: >1 = a slower machine: CPU and DB phases take proportionally
        #: longer (the heterogeneity motivating least-jobs dispatch)
        self.speed_factor = speed_factor
        self.tasks = 0
        self.crashed = False
        self._db_busy_until = 0.0
        # time-integral of concurrency, for the avg-parallel-tasks column
        self._last_change = 0.0
        self._task_seconds = 0.0

    # -- concurrency accounting --------------------------------------------
    def _mark(self) -> None:
        now = self.loop.clock.now
        self._task_seconds += self.tasks * (now - self._last_change)
        self._last_change = now

    def avg_tasks(self, horizon: float) -> float:
        self._mark()
        return self._task_seconds / horizon if horizon > 0 else 0.0

    # -- service-time components ----------------------------------------------
    def _fetch_time(self) -> float:
        t = FETCH_MEAN * self.rng.lognormvariate(0.0, FETCH_SIGMA)
        if self.rng.random() < SLOW_PROXY_PROB:
            t += self.rng.uniform(*SLOW_PROXY_EXTRA)
        return t

    def _cpu_time(self) -> float:
        per_task = OLD_CPU_PER_TASK if self.version == "old" else NEW_CPU_PER_TASK
        return per_task * max(1, self.tasks) * self.speed_factor

    def _db_delay(self) -> float:
        """Seconds until this task clears the database phase."""
        now = self.loop.clock.now
        if self.version == "new":
            return NEW_DB_TIME * self.speed_factor
        hold = OLD_DB_BASE * (1.0 + OLD_DB_LOAD_FACTOR * self.tasks)
        hold *= self.speed_factor
        start = max(now, self._db_busy_until)
        self._db_busy_until = start + hold
        return (start - now) + hold

    # -- task lifecycle ---------------------------------------------------------
    def submit(self, done: Callable[[float], None]) -> None:
        if self.crashed:
            raise ServerCrashed(self.name)
        self._mark()
        self.tasks += 1
        if self.version == "old" and self.tasks > OLD_CRASH_TASKS:
            self.crashed = True
            raise ServerCrashed(self.name)
        started = self.loop.clock.now

        def after_fetch() -> None:
            cpu = self._cpu_time()
            self.loop.call_later(cpu, after_cpu)

        def after_cpu() -> None:
            self.loop.call_later(self._db_delay(), finish)

        def finish() -> None:
            self._mark()
            self.tasks -= 1
            done(self.loop.clock.now - started)

        self.loop.call_later(self._fetch_time(), after_fetch)


class PerformanceModel:
    """One stress-test configuration of Sect. 5."""

    def __init__(
        self,
        version: str,
        n_clients: int,
        n_servers: int,
        streams_per_client: int = 5,
        seed: int = 5,
        policy: str = "least_jobs",
        server_speed_factors: Optional[List[float]] = None,
    ) -> None:
        if version not in ("old", "new"):
            raise ValueError(f"unknown version {version!r}")
        if policy not in ("least_jobs", "round_robin"):
            raise ValueError(f"unknown dispatch policy {policy!r}")
        self.version = version
        self.n_clients = n_clients
        self.n_servers = n_servers
        self.streams_per_client = streams_per_client
        self.policy = policy
        self.rng = random.Random(seed)
        self.loop = EventLoop()
        speeds = server_speed_factors or [1.0] * n_servers
        if len(speeds) != n_servers:
            raise ValueError("one speed factor per server required")
        self.servers = [
            _Server(f"ms-{i}", version, self.loop, self.rng, speed_factor=speeds[i])
            for i in range(n_servers)
        ]
        self.response_times: List[float] = []
        self.completions = 0
        self.crashed = False
        self._rr = 0

    def _pick_server(self) -> _Server:
        alive = [s for s in self.servers if not s.crashed]
        if not alive:
            raise ServerCrashed("all servers down")
        if self.policy == "round_robin":
            server = alive[self._rr % len(alive)]
            self._rr += 1
            return server
        return min(alive, key=lambda s: s.tasks)

    def _start_stream(self) -> None:
        """One Selenium stream: submit, wait, think, repeat."""

        def submit() -> None:
            if self.crashed:
                return
            try:
                server = self._pick_server()
                server.submit(done)
            except ServerCrashed:
                self.crashed = True

        def done(response_time: float) -> None:
            self.response_times.append(response_time)
            self.completions += 1
            think = self.rng.uniform(1.0, 4.0)
            self.loop.call_later(think, submit)

        self.loop.call_later(self.rng.uniform(0.0, 10.0), submit)

    def run(self, sim_minutes: float = 180.0, warmup_minutes: float = 20.0) -> PerfRow:
        """Run the closed-loop stress test and summarize the window."""
        for _ in range(self.n_clients * self.streams_per_client):
            self._start_stream()
        warmup_seconds = warmup_minutes * 60.0
        self.loop.run_until(warmup_seconds)
        self.response_times.clear()
        completions_before = self.completions
        for server in self.servers:
            server._mark()
            server._task_seconds = 0.0
        self.loop.run_until(sim_minutes * 60.0)
        horizon = (sim_minutes - warmup_minutes) * 60.0
        completed = self.completions - completions_before
        avg_tasks = sum(s.avg_tasks(horizon) for s in self.servers)
        response = (
            sum(self.response_times) / len(self.response_times)
            if self.response_times
            else float("nan")
        )
        throughput_per_day = completed / horizon * 86_400.0
        return PerfRow(
            version=self.version,
            n_clients=self.n_clients,
            n_servers=self.n_servers,
            avg_parallel_tasks=avg_tasks,
            response_minutes=response / 60.0,
            max_daily_requests=throughput_per_day,
        )


#: the five configurations of Table 1:
#: (version, clients, servers, streams per client)
TABLE1_CONFIGS: Tuple[Tuple[str, int, int, int], ...] = (
    ("old", 1, 1, 5),
    ("old", 2, 1, 5),
    ("new", 1, 1, 5),
    ("new", 2, 1, 5),
    ("new", 3, 4, 13),
)


def run_table1(
    sim_minutes: float = 180.0, seed: int = 5
) -> List[PerfRow]:
    """Regenerate every row of Table 1."""
    rows = []
    for version, clients, servers, streams in TABLE1_CONFIGS:
        model = PerformanceModel(
            version, clients, servers, streams_per_client=streams, seed=seed
        )
        rows.append(model.run(sim_minutes=sim_minutes))
    return rows
