"""Storage-engine benchmark: scans vs indexes, one shard vs many.

The Database server of the paper's deployment answered every
``sp_responses_for_job`` by scanning the responses table — fine at
add-on launch, painful at 5,700 price checks with a 30-node fan-out
each.  PR 4 put secondary indexes under the hot stored procedures and a
domain-sharded router over N Database servers; this workload quantifies
both changes:

* **scan vs index** — populate 10k response rows (default scale), then
  answer the same ``sp_responses_for_job`` workload twice: once through
  the indexed lookup path and once through the pre-PR-4 full-table
  scan.  Reported per storage engine (``memory`` and ``sqlite``); the
  CI perf-smoke gates on the indexed path winning by >= 5x.
* **1 vs N shards** — the same deployment-shaped write + query mix
  against a single ``DatabaseServer`` and a ``ShardedDatabase`` router,
  reporting per-query latency and the per-shard row occupancy the
  consistent-hash ring produced.

``run_storagebench`` returns a JSON-ready report; the CLI command
``repro storagebench`` writes it to ``BENCH_storage.json``.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.database import DatabaseServer
from repro.storage import ShardedDatabase, make_backend


@dataclass
class StorageBenchConfig:
    """Knobs of one benchmark run."""

    seed: int = 2017
    #: distinct price-check jobs written (requests table)
    n_jobs: int = 500
    #: response rows per job — n_jobs * responses_per_job total rows
    responses_per_job: int = 20
    #: lookups timed per measured pass
    n_queries: int = 400
    #: best-of repeats for every timed pass
    repeats: int = 3
    #: storage engines to compare on the scan-vs-index axis
    backends: Tuple[str, ...] = ("memory", "sqlite")
    #: shard counts to compare (1 = the paper's single server)
    shard_counts: Tuple[int, ...] = (1, 4)
    #: domains the jobs spread over (the shard router hashes these)
    n_domains: int = 24

    @classmethod
    def smoke_scale(cls) -> "StorageBenchConfig":
        """A reduced instance for CI perf-smoke and unit tests."""
        return cls(n_jobs=150, responses_per_job=10, n_queries=120,
                   repeats=2, n_domains=12)

    @property
    def total_responses(self) -> int:
        return self.n_jobs * self.responses_per_job


def _populate(db, config: StorageBenchConfig, rng: random.Random) -> List[str]:
    """Write the deployment-shaped dataset; return the job IDs."""
    job_ids: List[str] = []
    for i in range(config.n_jobs):
        job_id = f"job-{i:05d}"
        domain = f"store-{i % config.n_domains:02d}.example"
        db.sp_record_request(
            job_id=job_id,
            user_id=f"user-{i % 97:03d}",
            url=f"http://{domain}/product/p-{i}",
            domain=domain,
            time=float(i),
        )
        db.sp_record_responses(
            job_id,
            [
                {"kind": "IPC", "vantage": f"ipc-{v:02d}",
                 "price": round(10.0 + rng.random() * 90.0, 2)}
                for v in range(config.responses_per_job)
            ],
        )
        job_ids.append(job_id)
    return job_ids


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _query_sample(job_ids: List[str], n: int, rng: random.Random) -> List[str]:
    return [job_ids[rng.randrange(len(job_ids))] for _ in range(n)]


def bench_scan_vs_index(
    config: StorageBenchConfig, backend_spec: str
) -> Dict[str, object]:
    """Time ``sp_responses_for_job`` via index seek vs full-table scan."""
    rng = random.Random(config.seed)
    db = DatabaseServer(backend=make_backend(backend_spec))
    job_ids = _populate(db, config, rng)
    sample = _query_sample(job_ids, config.n_queries, random.Random(config.seed + 1))

    def indexed_pass() -> None:
        for job_id in sample:
            db.sp_responses_for_job(job_id)

    def scan_pass() -> None:
        # the pre-PR-4 implementation: filter a full-table scan in Python
        for job_id in sample:
            [r for r in db.backend.scan("responses") if r.get("job_id") == job_id]

    hits_before = db.backend.index_hits
    indexed_s = _best_of(config.repeats, indexed_pass)
    index_hits = db.backend.index_hits - hits_before
    scan_s = _best_of(config.repeats, scan_pass)
    return {
        "backend": backend_spec,
        "rows": config.total_responses,
        "queries": config.n_queries,
        "indexed_s": round(indexed_s, 6),
        "scan_s": round(scan_s, 6),
        "indexed_us_per_query": round(indexed_s / config.n_queries * 1e6, 2),
        "scan_us_per_query": round(scan_s / config.n_queries * 1e6, 2),
        "speedup": round(scan_s / max(indexed_s, 1e-12), 2),
        "index_hits": index_hits,
    }


def bench_sharding(
    config: StorageBenchConfig, n_shards: int, backend_spec: str = "memory"
) -> Dict[str, object]:
    """Write + query the deployment mix against an N-shard database."""
    rng = random.Random(config.seed)
    if n_shards > 1:
        db = ShardedDatabase(n_shards=n_shards, backend=backend_spec)
    else:
        db = DatabaseServer(backend=make_backend(backend_spec))
    populate_s = _best_of(1, lambda: _populate(db, config, rng))
    job_ids = [f"job-{i:05d}" for i in range(config.n_jobs)]
    sample = _query_sample(job_ids, config.n_queries, random.Random(config.seed + 1))

    def query_pass() -> None:
        for job_id in sample:
            db.sp_responses_for_job(job_id)
        db.sp_requests_by_domain()

    query_s = _best_of(config.repeats, query_pass)
    if n_shards > 1:
        occupancy = db.shard_row_counts("requests")
    else:
        occupancy = {"single": db.count("requests")}
    counts = list(occupancy.values())
    return {
        "shards": n_shards,
        "backend": backend_spec,
        "populate_s": round(populate_s, 6),
        "query_s": round(query_s, 6),
        "query_us_per_lookup": round(query_s / config.n_queries * 1e6, 2),
        "rows_per_shard": occupancy,
        "occupancy_spread": round(max(counts) / max(1, min(counts)), 2),
        "scatter_queries": getattr(db, "scatter_queries", 0),
    }


def run_storagebench(
    config: Optional[StorageBenchConfig] = None,
) -> Dict[str, object]:
    """Run both axes; return the ``BENCH_storage.json`` report dict."""
    config = config if config is not None else StorageBenchConfig()
    scan_vs_index = [
        bench_scan_vs_index(config, spec) for spec in config.backends
    ]
    sharding = [bench_sharding(config, n) for n in config.shard_counts]
    baseline = sharding[0]["query_s"]
    for entry in sharding:
        entry["query_speedup_vs_single"] = round(
            baseline / max(entry["query_s"], 1e-12), 2
        )
    return {
        "benchmark": "storage engine (scan vs index, 1 vs N shards)",
        "config": {
            **asdict(config),
            "backends": list(config.backends),
            "shard_counts": list(config.shard_counts),
        },
        "scan_vs_index": scan_vs_index,
        "sharding": sharding,
        "min_index_speedup": min(e["speedup"] for e in scan_vs_index),
    }
