"""Scale benchmark: checks/sec as the Measurement-server fleet grows.

The Table-1 question asked horizontally: with the queued measurement
tier (:mod:`repro.core.jobqueue`) in front of N Measurement servers,
how does sustained price-check throughput scale with N?  Every level
replays the *same* seeded workload — same stores, same product roster,
same submission order — against a fleet of growing size, so the only
variable is how many per-server worker pools the queue tier can spread
a wave of concurrent checks over.

Two sections in the report:

* **measured** — the simulated-timeline sweep over ``server_counts``
  (1 → 8 by default).  Elapsed time is the engine makespan of the whole
  run; ``checks_per_sec`` at 8 servers over 1 server is the scaling
  factor the CI gate pins (≥ 3x).
* **projection** — a seeded arrival-process simulation from 1k to 1M
  active users: daily check arrivals (a base rate plus an evening
  burst) offered to a FIFO queue with deterministic service at the
  measured top-fleet capacity, reporting admitted/shed counts, p95
  queueing wait, and utilization per population level.

``repro scalebench`` writes the report to ``BENCH_scale.json``.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.clients.ipc import DEFAULT_IPC_SITES
from repro.core.errors import InvalidConfig
from repro.core.sheriff import PriceSheriff, SheriffWorld
from repro.net.events import SECONDS_PER_DAY
from repro.obs import Telemetry
from repro.workloads.stores import build_named_stores, uniform_store_specs
from repro.workloads.throughput import USER_COUNTRIES

__all__ = ["ScaleBenchConfig", "run_scalebench"]


@dataclass
class ScaleBenchConfig:
    """Knobs of one scaling-sweep run."""

    seed: int = 2017
    #: Measurement-server fleet sizes to sweep (same workload each)
    server_counts: Tuple[int, ...] = (1, 2, 4, 8)
    #: price checks executed per fleet size
    total_checks: int = 64
    #: concurrent submitters per wave (waves of this many checks are
    #: submitted together, then collected together)
    n_users: int = 16
    ipc_sites: Sequence[Tuple[str, str, float]] = DEFAULT_IPC_SITES
    n_stores: int = 8
    max_fetch_workers: int = 16
    #: queue-tier admission limit and work-steal imbalance threshold
    queue_depth: int = 256
    queue_steal_threshold: Optional[int] = 16
    #: population levels of the 1k → 1M projection sweep
    users_levels: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)
    #: offered load per active user (the deployment saw >5700 checks
    #: from 1265 users over ~390 days ≈ 0.012 checks/user/day)
    checks_per_user_per_day: float = 0.012
    #: fraction of a day's checks concentrated in the evening burst
    burst_fraction: float = 0.4
    burst_hours: Tuple[int, int] = (19, 22)

    @classmethod
    def smoke_scale(cls) -> "ScaleBenchConfig":
        """A reduced instance for CI and unit tests (still sweeps 1→8
        servers, since the scaling gate compares the endpoints)."""
        return cls(
            server_counts=(1, 2, 8),
            total_checks=32,
            n_users=16,
            ipc_sites=DEFAULT_IPC_SITES[:10],
            n_stores=4,
            users_levels=(1_000, 100_000, 1_000_000),
        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScaleBenchConfig":
        """Build from a JSON-loaded dict; unknown keys raise
        :class:`~repro.core.errors.InvalidConfig`."""
        if not isinstance(data, dict):
            raise InvalidConfig(
                f"scalebench config must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise InvalidConfig(
                f"unknown scalebench config key(s): {', '.join(unknown)}"
            )
        kwargs: Dict[str, Any] = dict(data)
        for name in ("server_counts", "users_levels", "burst_hours"):
            if name in kwargs:
                value = kwargs[name]
                if not isinstance(value, (list, tuple)) or not all(
                    isinstance(v, int) and not isinstance(v, bool)
                    for v in value
                ):
                    raise InvalidConfig(
                        f"{name} must be a list of integers, got {value!r}"
                    )
                kwargs[name] = tuple(value)
        if "ipc_sites" in kwargs:
            kwargs["ipc_sites"] = tuple(
                tuple(site) for site in kwargs["ipc_sites"]
            )
        config = cls(**kwargs)
        if not config.server_counts:
            raise InvalidConfig("server_counts must not be empty")
        if any(n < 1 for n in config.server_counts):
            raise InvalidConfig(
                f"server_counts must all be >= 1, got "
                f"{config.server_counts!r}"
            )
        if config.total_checks < 1 or config.n_users < 1:
            raise InvalidConfig(
                "total_checks and n_users must both be >= 1"
            )
        if config.queue_depth < 1:
            raise InvalidConfig(
                f"queue_depth must be >= 1, got {config.queue_depth}"
            )
        return config


def _build_fleet(
    config: ScaleBenchConfig, n_servers: int
) -> Tuple[SheriffWorld, PriceSheriff, List[str]]:
    """A fresh seeded world with the queue tier over ``n_servers``.

    The database is sharded to match the fleet (one shard per server),
    so result collection exercises the scatter-gather read path the
    sharded deployment actually runs.
    """
    world = SheriffWorld.create(seed=config.seed)
    specs = uniform_store_specs(config.n_stores, seed=config.seed + 3)
    stores = build_named_stores(world, specs)
    sheriff = PriceSheriff(
        world,
        n_measurement_servers=n_servers,
        ipc_sites=config.ipc_sites,
        dispatch_policy="round_robin",
        pipelined=True,
        max_fetch_workers=config.max_fetch_workers,
        telemetry=Telemetry(metrics_only=True),
        db_shards=n_servers,
        job_queue=True,
        queue_depth=config.queue_depth,
        queue_steal_threshold=config.queue_steal_threshold,
    )
    urls: List[str] = []
    for spec in specs:
        store = stores[spec.domain]
        for product in store.catalog.products:
            urls.append(store.product_url(product.product_id))
    return world, sheriff, urls


def _run_level(config: ScaleBenchConfig, n_servers: int) -> Dict[str, object]:
    """Run the full workload against one fleet size."""
    world, sheriff, urls = _build_fleet(config, n_servers)
    addons = [
        sheriff.install_addon(
            world.make_browser(USER_COUNTRIES[i % len(USER_COUNTRIES)])
        )
        for i in range(config.n_users)
    ]
    completed = 0
    rows_total = 0
    job_ids: List[str] = []
    start = sheriff.engine.now
    issued = 0
    while issued < config.total_checks:
        wave_size = min(config.n_users, config.total_checks - issued)
        wave = []
        for u in range(wave_size):
            addon = addons[u]
            url = urls[(issued + u) % len(urls)]
            wave.append((addon, addon.submit_price_check(url)))
        for addon, pending in wave:
            job_ids.append(pending.handle.job_id)
            result = addon.collect(pending)
            rows_total += len(result.rows)
            completed += 1
        issued += wave_size
    elapsed = max(sheriff.engine.now - start, 1e-9)
    # Scatter-gather read-back of every job's persisted rows through the
    # JobAPI façade — one indexed single-shard seek per job.
    gathered = sheriff.jobs.gather(job_ids)
    queue = sheriff.job_queue.stats() if sheriff.job_queue else {}
    return {
        "servers": n_servers,
        "db_shards": n_servers,
        "checks": completed,
        "rows": rows_total,
        "rows_gathered": sum(len(rows) for rows in gathered.values()),
        "elapsed_s": round(elapsed, 3),
        "checks_per_sec": round(completed / elapsed, 4),
        "queue": queue,
        "latency_breakdown": _latency_breakdown(sheriff),
        "peak_workers": max(
            (p.peak_busy for p in sheriff.engine._pools.values()), default=0
        ),
    }


def _latency_breakdown(sheriff) -> Dict[str, object]:
    """Queue-wait vs service-time percentiles from the run's metrics.

    Splits where each check's wall time went: ``queue_wait_s`` is the
    admission-to-dispatch wait in the queued tier
    (``sheriff_queue_wait_seconds``), ``service_time_s`` is the
    measurement itself (``sheriff_check_latency_seconds``).  At small
    fleets the wait dominates; the sweep shows it collapsing as servers
    are added while service time stays flat — the queueing-theory
    signature Table 1 predicts.
    """
    registry = sheriff.telemetry.registry
    breakdown: Dict[str, object] = {}
    for key, metric_name in (
        ("queue_wait_s", "sheriff_queue_wait_seconds"),
        ("service_time_s", "sheriff_check_latency_seconds"),
    ):
        histogram = registry.get(metric_name)
        if histogram is None or histogram.total_count() == 0:
            breakdown[key] = None
            continue
        pcts = histogram.percentiles((50.0, 90.0, 99.0))
        breakdown[key] = {
            "count": histogram.total_count(),
            **{
                name: (None if value is None else round(value, 4))
                for name, value in pcts.items()
            },
        }
    return breakdown


def _simulate_population(
    config: ScaleBenchConfig, users: int, capacity_cps: float
) -> Dict[str, object]:
    """One projected day at a population level, against measured capacity.

    Seeded arrival process: each check lands uniformly in the day,
    except a ``burst_fraction`` share concentrated in the evening
    window.  Offered to a FIFO queue with deterministic service time
    ``1/capacity_cps`` and the tier's admission bound: an arrival that
    finds ``queue_depth`` checks already waiting is shed, exactly the
    admission-control decision the live tier makes.
    """
    rng = random.Random(config.seed * 1_000_003 + users)
    n_arrivals = max(1, round(users * config.checks_per_user_per_day))
    burst_start = config.burst_hours[0] * 3600.0
    burst_end = config.burst_hours[1] * 3600.0
    arrivals = sorted(
        rng.uniform(burst_start, burst_end)
        if rng.random() < config.burst_fraction
        else rng.uniform(0.0, SECONDS_PER_DAY)
        for _ in range(n_arrivals)
    )
    service = 1.0 / max(capacity_cps, 1e-9)
    next_free = 0.0
    busy = 0.0
    shed = 0
    waits: List[float] = []
    for t in arrivals:
        waiting = max(0.0, next_free - t) / service
        if waiting >= config.queue_depth:
            shed += 1
            continue
        begin = max(t, next_free)
        waits.append(begin - t)
        next_free = begin + service
        busy += service
    waits.sort()

    def pct(p: float) -> float:
        if not waits:
            return 0.0
        return waits[min(len(waits) - 1, int(p * len(waits)))]

    return {
        "users": users,
        "arrivals_per_day": n_arrivals,
        "admitted": len(waits),
        "shed": shed,
        "p50_wait_s": round(pct(0.50), 4),
        "p95_wait_s": round(pct(0.95), 4),
        "utilization": round(busy / SECONDS_PER_DAY, 6),
    }


def run_scalebench(
    config: Optional[ScaleBenchConfig] = None,
) -> Dict[str, object]:
    """Sweep the fleet sizes, then project 1k → 1M users; return the
    BENCH report dict."""
    config = config if config is not None else ScaleBenchConfig()
    levels = [_run_level(config, n) for n in config.server_counts]
    baseline = levels[0]
    top = max(levels, key=lambda entry: entry["servers"])
    scaling = top["checks_per_sec"] / max(baseline["checks_per_sec"], 1e-9)
    capacity = float(top["checks_per_sec"])
    projection = [
        _simulate_population(config, users, capacity)
        for users in config.users_levels
    ]
    return {
        "benchmark": (
            "measurement-tier scaling (checks/sec vs server count, "
            "queued dispatch)"
        ),
        "config": {
            **asdict(config),
            "ipc_sites": len(config.ipc_sites),
            "server_counts": list(config.server_counts),
            "users_levels": list(config.users_levels),
            "burst_hours": list(config.burst_hours),
        },
        "levels": levels,
        "scaling": {
            "baseline_servers": baseline["servers"],
            "top_servers": top["servers"],
            "speedup": round(scaling, 2),
        },
        "projection": {
            "capacity_checks_per_sec": round(capacity, 4),
            "levels": projection,
        },
    }
