"""Crypto fast-path benchmark: naive vs fastexp, 1 vs N workers.

Fig. 8(c) of the paper is a *performance* figure — wall-clock time per
privacy-preserving k-means iteration — and the protocol's cost is pure
group arithmetic.  This workload quantifies what the fast path of
:mod:`repro.crypto.fastexp` buys over the naive textbook implementation
(``use_fastexp=False``), phase by phase:

* **encrypt** — every client encrypts its encoded profile under the
  Coordinator's public keys (fixed-base comb tables for g and h_i);
* **distance** — the Aggregator masks every ciphertext (cheap
  re-randomization vs full mask encryption) and the Coordinator
  evaluates every centroid's function key against it (sign-split
  small-exponent evaluation + ephemeral α tables + batch inversion);
* **unmask** — the Aggregator strips the masks (Montgomery
  batch-inverted g^ν factors) and discrete-logs the distances (LRU-
  cached BSGS contexts);
* **update** — homomorphic cluster aggregation (single-pass
  ``add_many``) and centroid decryption (batched component decrypt).

Both paths run the same protocol on the same inputs from the same
seed; the report records that their ciphertexts, assignments, and
centroids matched (``lockstep_ok``) — fast math that produced different
bits would be a correctness bug, not a speedup.  The sweep covers the
64-bit :data:`TEST_GROUP` plus a pinned 256-bit group (and optionally
RFC 3526 at 2048 bits), each at 1 and N worker processes.

``run_cryptobench`` returns a JSON-ready report; the CLI command
``repro cryptobench`` writes it to ``BENCH_crypto.json`` and the CI
perf-smoke job gates on ``gate_speedup`` (encrypt+distance, TEST_GROUP,
single worker) staying above 3x.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.dlog import clear_dlog_cache
from repro.crypto.fastexp import clear_fastexp_cache, fastexp_cache_info
from repro.crypto.group import (
    BENCH_GROUP_256,
    RFC3526_GROUP_2048,
    SchnorrGroup,
    TEST_GROUP,
)
from repro.crypto.secure_kmeans import (
    KMeansAggregator,
    KMeansCoordinator,
    ProfileClient,
)

#: resolvable names for the --groups CLI flag
NAMED_GROUPS: Dict[str, SchnorrGroup] = {
    "test": TEST_GROUP,
    "bench256": BENCH_GROUP_256,
    "rfc3526": RFC3526_GROUP_2048,
}

PHASES = ("encrypt", "distance", "unmask", "update")


@dataclass
class CryptoBenchConfig:
    """Knobs of one benchmark run."""

    seed: int = 2017
    #: clients contributing encrypted profiles
    n_clients: int = 96
    #: profile dimensionality (the paper's Fig. 8(c) uses m ∈ {50, 100})
    m: int = 24
    #: number of centroids
    k: int = 6
    #: coordinate range [0, value_bound]
    value_bound: int = 25
    #: group parameter sets to sweep (names from NAMED_GROUPS)
    groups: Tuple[str, ...] = ("test", "bench256")
    #: worker-process counts for the parallel phases
    worker_counts: Tuple[int, ...] = (1, 4)
    #: best-of repeats for every timed pass
    repeats: int = 2

    @classmethod
    def smoke_scale(cls) -> "CryptoBenchConfig":
        """A reduced instance for CI perf-smoke and unit tests.

        Keeps ``repeats=2`` so the gated pass measures steady-state
        arithmetic (tables built during the first pass) rather than
        charging the one-off precomputation to a single tiny run.
        """
        return cls(n_clients=48, m=12, k=4, groups=("test",), repeats=2)


def _make_points(config: CryptoBenchConfig) -> Dict[str, List[int]]:
    """Deterministic sparse profiles, independent of the protocol RNG."""
    rng = random.Random(config.seed ^ 0x5EED)
    return {
        f"u{i}": [
            rng.randint(0, config.value_bound) if rng.random() < 0.4 else 0
            for _ in range(config.m)
        ]
        for i in range(config.n_clients)
    }


@dataclass
class _PassOutput:
    """What one protocol pass produced — compared across modes."""

    ciphertexts: list
    assignments: Dict[str, int]
    centroids: List[List[int]]
    rng_state: tuple


def _run_phases(
    group: SchnorrGroup,
    config: CryptoBenchConfig,
    points: Dict[str, List[int]],
    use_fastexp: bool,
    n_workers: int,
) -> Tuple[Dict[str, float], _PassOutput]:
    """One full protocol pass, timed phase by phase."""
    rng = random.Random(config.seed)
    timings: Dict[str, float] = {}
    with KMeansCoordinator(
        group, m=config.m, value_bound=config.value_bound, rng=rng,
        n_workers=n_workers, use_fastexp=use_fastexp,
    ) as coordinator, KMeansAggregator(
        group, coordinator, rng=rng,
        n_workers=n_workers, use_fastexp=use_fastexp,
    ) as aggregator:
        started = time.perf_counter()
        for client_id, point in points.items():
            client = ProfileClient(client_id, point, config.value_bound)
            aggregator.submit(
                client_id,
                client.encrypt_profile(
                    coordinator.scheme, coordinator.public_keys, rng
                ),
            )
        timings["encrypt"] = time.perf_counter() - started

        ids = sorted(points)
        coordinator.set_centroids(
            [points[ids[i % len(ids)]] for i in range(config.k)]
        )

        started = time.perf_counter()
        masked_batch, nus = aggregator.mask_all()
        gamma_map = coordinator.distance_elements_batch(masked_batch)
        timings["distance"] = time.perf_counter() - started

        started = time.perf_counter()
        assignments, _ = aggregator.choose_clusters(gamma_map, nus)
        timings["unmask"] = time.perf_counter() - started

        started = time.perf_counter()
        for cluster, (aggregate, card) in aggregator.aggregate_clusters().items():
            coordinator.update_centroid(cluster, aggregate, card)
        timings["update"] = time.perf_counter() - started

        timings["total"] = sum(timings[p] for p in PHASES)
        output = _PassOutput(
            ciphertexts=[aggregator._ciphertexts[i] for i in ids],
            assignments=assignments,
            centroids=[list(c) for c in coordinator.centroids],
            rng_state=rng.getstate(),
        )
    return timings, output


def _best_of(
    group: SchnorrGroup,
    config: CryptoBenchConfig,
    points: Dict[str, List[int]],
    use_fastexp: bool,
    n_workers: int,
) -> Tuple[Dict[str, float], _PassOutput]:
    """Best-of-``repeats`` per phase; cold caches before the first pass."""
    clear_fastexp_cache()
    clear_dlog_cache()
    best: Dict[str, float] = {}
    output: Optional[_PassOutput] = None
    for _ in range(max(1, config.repeats)):
        timings, output = _run_phases(
            group, config, points, use_fastexp, n_workers
        )
        for phase, seconds in timings.items():
            best[phase] = min(best.get(phase, float("inf")), seconds)
    return best, output


def _round_timings(timings: Dict[str, float]) -> Dict[str, float]:
    return {f"{k}_s": round(v, 6) for k, v in timings.items()}


def _speedups(naive: Dict[str, float], fast: Dict[str, float]) -> Dict[str, float]:
    out = {
        phase: round(naive[phase] / max(fast[phase], 1e-12), 2)
        for phase in (*PHASES, "total")
    }
    joint = naive["encrypt"] + naive["distance"]
    out["encrypt_distance"] = round(
        joint / max(fast["encrypt"] + fast["distance"], 1e-12), 2
    )
    return out


def bench_group(
    config: CryptoBenchConfig, group_name: str
) -> Dict[str, object]:
    """Sweep naive-vs-fast × worker counts on one parameter set."""
    group = NAMED_GROUPS[group_name]
    points = _make_points(config)
    rows: List[Dict[str, object]] = []
    lockstep_ok = True
    reference: Optional[_PassOutput] = None
    for n_workers in config.worker_counts:
        naive_t, naive_out = _best_of(group, config, points, False, n_workers)
        fast_t, fast_out = _best_of(group, config, points, True, n_workers)
        # the whole point: fast bits == naive bits, every mode, every pool
        for out in (naive_out, fast_out):
            if reference is None:
                reference = out
                continue
            lockstep_ok = lockstep_ok and (
                out.ciphertexts == reference.ciphertexts
                and out.assignments == reference.assignments
                and out.centroids == reference.centroids
                and out.rng_state == reference.rng_state
            )
        rows.append({
            "n_workers": n_workers,
            "naive": _round_timings(naive_t),
            "fast": _round_timings(fast_t),
            "speedup": _speedups(naive_t, fast_t),
        })
    return {
        "group": group_name,
        "bits": group.bits,
        "workers": rows,
        "lockstep_ok": lockstep_ok,
    }


def run_cryptobench(
    config: Optional[CryptoBenchConfig] = None,
) -> Dict[str, object]:
    """Run the full sweep; return the ``BENCH_crypto.json`` report dict."""
    config = config if config is not None else CryptoBenchConfig()
    group_reports = [bench_group(config, name) for name in config.groups]

    # CI gate: encrypt+distance speedup on the test group, single worker
    gate = None
    for report in group_reports:
        if report["group"] != "test":
            continue
        for row in report["workers"]:
            if row["n_workers"] == 1:
                gate = row["speedup"]["encrypt_distance"]
    return {
        "benchmark": "crypto fastexp (naive vs fast, 1 vs N workers)",
        "config": {
            **asdict(config),
            "groups": list(config.groups),
            "worker_counts": list(config.worker_counts),
        },
        "groups": group_reports,
        "lockstep_ok": all(r["lockstep_ok"] for r in group_reports),
        "gate_speedup": gate,
        "fastexp_cache": fastexp_cache_info(),
    }
