"""Drivers for the systematic measurement study (Sect. 7).

All crawling runs on a *parallel back-end*: a second
:class:`~repro.core.sheriff.PriceSheriff` over the same world that
shares the live deployment's PPC overlay but keeps its own database —
exactly the isolation the paper describes in Sect. 7.1.

* :meth:`CrawlStudy.crawl_domains` — the 24-domain × 30-product × 15-rep
  sweep behind Fig. 11 / Table 3 / Sect. 7.2;
* :func:`four_country_case_study` — ~300 requests per retailer per
  country for chegg/jcpenney/amazon in ES/FR/GB/DE (Fig. 12, Table 5,
  Fig. 13);
* :func:`temporal_study` — the Sect. 7.5 setup: a fleet of clean-profile
  PPCs in Spain covering the full OS × browser matrix, checking each
  product twice a day for 20 days (Figs. 14–15);
* :meth:`CrawlStudy.alexa_sweep` — the Sect. 7.6 top-400 scan.
"""

from __future__ import annotations

import random
import zlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.browser.fingerprint import all_user_agents
from repro.clients.crawler import SystematicCrawler
from repro.core.pricecheck import PriceCheckResult
from repro.core.sheriff import PriceSheriff, SheriffWorld
from repro.net.events import SECONDS_PER_DAY
from repro.web.store import EStore


class CrawlStudy:
    """A crawling back-end attached to an existing deployment."""

    def __init__(
        self,
        world: SheriffWorld,
        live_sheriff: Optional[PriceSheriff] = None,
        seed: int = 71,
        n_measurement_servers: int = 2,
        ipc_sites=None,
        # the paper's requests reached ~3 PPCs on average (max 5)
        max_ppcs_per_request: int = 3,
    ) -> None:
        self.world = world
        kwargs = {}
        if ipc_sites is not None:
            kwargs["ipc_sites"] = ipc_sites
        self.backend = PriceSheriff(
            world,
            n_measurement_servers=n_measurement_servers,
            overlay=live_sheriff.overlay if live_sheriff is not None else None,
            max_ppcs_per_request=max_ppcs_per_request,
            **kwargs,
        )
        self._rng = random.Random(seed)

    # -- generic sweeps -----------------------------------------------------
    def product_urls(self, domain: str, n_products: int) -> List[str]:
        store = self.world.internet.site(domain)
        assert isinstance(store, EStore)
        products = store.catalog.sample(self._rng, min(n_products, len(store.catalog)))
        return [store.product_url(p.product_id) for p in products]

    def crawl_domains(
        self,
        domains: Sequence[str],
        products_per_domain: int = 30,
        repetitions: int = 15,
        country: str = "ES",
        city: Optional[str] = None,
    ) -> List[PriceCheckResult]:
        """The Sect. 7.1 sweep: every product, ``repetitions`` times, with
        repetitions spread over varying times of day."""
        urls = {
            domain: self.product_urls(domain, products_per_domain)
            for domain in domains
        }
        crawler = SystematicCrawler(
            self.backend, country, city, rng=random.Random(self._rng.random())
        )
        results: List[PriceCheckResult] = []
        for rep in range(repetitions):
            # repetitions happen at varying times of the day
            self.world.clock.advance(self._rng.uniform(0.2, 0.5) * SECONDS_PER_DAY)
            for domain in domains:
                for url in urls[domain]:
                    results.append(crawler.check(url))
        return results

    def alexa_sweep(
        self,
        domains: Sequence[str],
        products_per_domain: int = 5,
        days: int = 3,
        country: str = "ES",
    ) -> List[PriceCheckResult]:
        """Sect. 7.6: each site, 5 random products, 3 consecutive days."""
        urls = {
            domain: self.product_urls(domain, products_per_domain)
            for domain in domains
        }
        crawler = SystematicCrawler(
            self.backend, country, rng=random.Random(self._rng.random())
        )
        results: List[PriceCheckResult] = []
        for _ in range(days):
            for domain in domains:
                for url in urls[domain]:
                    results.append(crawler.check(url))
            self.world.clock.advance(SECONDS_PER_DAY)
        return results


def four_country_case_study(
    study: CrawlStudy,
    domains: Sequence[str] = ("chegg.com", "jcpenney.com", "amazon.com"),
    countries: Sequence[str] = ("ES", "FR", "GB", "DE"),
    products_per_domain: int = 25,
    repetitions: int = 15,
) -> Dict[str, Dict[str, List[PriceCheckResult]]]:
    """Sect. 7.3: per-retailer, per-country artificial request batches.

    Requires the shared overlay to contain PPCs in each target country
    (the live population provides them).  Returns
    ``{domain: {country: [results]}}``.
    """
    out: Dict[str, Dict[str, List[PriceCheckResult]]] = defaultdict(dict)
    for domain in domains:
        urls = study.product_urls(domain, products_per_domain)
        for country in countries:
            crawler = SystematicCrawler(
                study.backend, country,
                rng=random.Random(zlib.crc32(f"{domain}:{country}".encode())),
            )
            results: List[PriceCheckResult] = []
            for _ in range(repetitions):
                study.world.clock.advance(0.3 * SECONDS_PER_DAY)
                for url in urls:
                    results.append(crawler.check(url))
            out[domain][country] = results
    return dict(out)


@dataclass
class TemporalStudyResult:
    """Output of the Sect. 7.5 temporal experiment."""

    results_by_domain: Dict[str, List[PriceCheckResult]]
    feature_names: List[str]
    features: List[List[float]]  # per PPC observation
    prices: List[float]  # normalized price (vs per-check median)


def temporal_study(
    study: CrawlStudy,
    domains: Sequence[str] = ("jcpenney.com", "chegg.com"),
    products_per_domain: int = 30,
    days: int = 20,
    checks_per_day: int = 2,
    country: str = "ES",
) -> TemporalStudyResult:
    """The Sect. 7.5 setup: clean-profile PPC fleet + UA matrix.

    A fleet of nine PPCs — every OS × browser combination — with empty
    browsing histories is stood up in Spain; every product is checked
    ``checks_per_day`` times per day for ``days`` days.  The regression
    features (OS, browser, quarter of day, weekday) are extracted per
    PPC observation, with the price normalized by the check's median so
    products of different price levels pool.
    """
    agents = all_user_agents()
    fleet_sheriff = study.backend
    for agent in agents:
        browser = study.world.make_browser(country, agent=agent)
        fleet_sheriff.install_addon(browser)  # clean-profile PPC

    urls = {d: study.product_urls(d, products_per_domain) for d in domains}
    crawler = SystematicCrawler(
        fleet_sheriff, country, rng=random.Random(4242),
        min_delay=1.0, max_delay=5.0,
    )
    results_by_domain: Dict[str, List[PriceCheckResult]] = defaultdict(list)
    for day in range(days):
        for check in range(checks_per_day):
            for domain in domains:
                for url in urls[domain]:
                    results_by_domain[domain].append(crawler.check(url))
            # morning / evening split
            study.world.clock.advance(SECONDS_PER_DAY / (checks_per_day + 1))
        # move to the next day boundary
        remainder = SECONDS_PER_DAY - (study.world.clock.now % SECONDS_PER_DAY)
        study.world.clock.advance(remainder + 1.0)

    names, X, y = _regression_features(results_by_domain)
    return TemporalStudyResult(
        results_by_domain=dict(results_by_domain),
        feature_names=names,
        features=X,
        prices=y,
    )


def _regression_features(
    results_by_domain: Dict[str, List[PriceCheckResult]]
) -> Tuple[List[str], List[List[float]], List[float]]:
    """Per-PPC-observation feature matrix for the Sect. 7.5 regressions."""
    from repro.browser.fingerprint import BROWSERS, OSES

    names = (
        [f"os:{o}" for o in OSES[:-1]]
        + [f"browser:{b}" for b in BROWSERS[:-1]]
        + [f"quarter:{q}" for q in range(3)]
        + ["weekday"]
    )
    X: List[List[float]] = []
    y: List[float] = []
    for results in results_by_domain.values():
        for result in results:
            prices = [
                r.amount_eur for r in result.valid_rows()
                if r.kind == "PPC" and r.amount_eur is not None
            ]
            if len(prices) < 2:
                continue
            median = sorted(prices)[len(prices) // 2]
            if median <= 0:
                continue
            day_seconds = result.time % SECONDS_PER_DAY
            quarter = int(day_seconds // (SECONDS_PER_DAY / 4))
            weekday = int(result.time // SECONDS_PER_DAY) % 7
            for row in result.valid_rows():
                if row.kind != "PPC" or row.amount_eur is None:
                    continue
                features = (
                    [1.0 if row.ua_os == o else 0.0 for o in OSES[:-1]]
                    + [1.0 if row.ua_browser == b else 0.0 for b in BROWSERS[:-1]]
                    + [1.0 if quarter == q else 0.0 for q in range(3)]
                    + [float(weekday)]
                )
                X.append(features)
                y.append(row.amount_eur / median)
    return names, X, y
