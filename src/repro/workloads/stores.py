"""The calibrated retailer roster of the live deployment.

Every domain the paper names gets a pricing policy tuned to reproduce
its reported behaviour:

* the Fig. 9 / Table 3 cross-border retailers (digitalrev.com with the
  Phase One IQ280, steampowered.com's regional game pricing up to
  ×2.55, abercrombie.com, luisaviaroma.com with >€1000 absolute gaps,
  …) use :class:`~repro.web.pricing.RegionalPricing`;
* the three within-country domains of Sect. 6.3/7.3: amazon.com folds
  destination VAT into prices for identified users, jcpenney.com runs
  per-country A/B tests (sticky in the UK — the biased peers of
  Fig. 13) over a drifting baseline with occasional large jumps
  (Fig. 14), chegg.com runs scattered 3–7 % A/B deltas with a smoother
  drift (Fig. 15) and no test at all in France (Table 5);
* everything else is honest.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.sheriff import SheriffWorld
from repro.web.catalog import Product, flagship_products, make_catalog
from repro.web.pricing import (
    ABTestPricing,
    CompositePricing,
        PerCountryABTestPricing,
    PricingPolicy,
    RegionalPricing,
    TemporalDriftPricing,
    UniformPricing,
    VatInclusivePricing,
)
from repro.web.store import EStore

PolicyFactory = Callable[[SheriffWorld], PricingPolicy]


@dataclass(frozen=True)
class StoreSpec:
    """Blueprint for one named retailer."""

    domain: str
    country: str
    categories: Tuple[str, ...]
    policy_factory: PolicyFactory
    catalog_size: int = 8
    currency_strategy: str = "local"
    popularity: float = 1.0  # request weight in the live deployment
    flagship: Tuple[Product, ...] = ()
    converter_skew: float = 1.0


def _jcpenney_policy(world: SheriffWorld) -> PricingPolicy:
    return CompositePricing([
        RegionalPricing(
            {"JP": 1.55, "KR": 1.5, "ES": 1.35, "PT": 1.4, "CZ": 1.45},
            coverage=0.8, magnitude_range=(0.6, 1.0), salt="jcp-regional",
        ),
        PerCountryABTestPricing({
            # Spain: scattered across multiple small values; zero-heavy
            # so only ~59% of checks catch a difference (Table 5)
            "ES": ABTestPricing(
                deltas=(0.0,) * 22 + (0.004, 0.008, 0.012),
                salt="jcp-es",
            ),
            # France: two values, small (<2%), ~67% of checks differ
            "FR": ABTestPricing(deltas=(0.0,) * 8 + (0.018, 0.018),
                                salt="jcp-fr"),
            # UK: exactly one 7% gap, sticky per client → the biased
            # peers of Fig. 13 (≈1 in 5 clients lands in the high bucket)
            "GB": ABTestPricing(deltas=(0.0,) * 4 + (0.07,), sticky=True,
                                salt="jcp-uk"),
            # Germany: one value, rarer (~35% of checks differ)
            "DE": ABTestPricing(deltas=(0.0,) * 23 + (0.015, 0.015),
                                salt="jcp-de"),
        }),
        TemporalDriftPricing(
            daily_sigma=0.008, trend=-0.004, jump_prob=0.06, jump_scale=0.45,
            updates_per_day=2, reversion=0.03, salt="jcp-drift",
        ),
    ])


def _chegg_policy(world: SheriffWorld) -> PricingPolicy:
    return CompositePricing([
        PerCountryABTestPricing({
            # Spain: deltas uniformly spread between 3% and 7%
            # (Sect. 7.3), zero-heavy to land near 39% of checks
            "ES": ABTestPricing(
                deltas=(0.0,) * 72 + (0.03, 0.04, 0.05, 0.06, 0.07),
                salt="chegg-es",
            ),
            "GB": ABTestPricing(
                deltas=(0.0,) * 60 + (0.03, 0.05), salt="chegg-uk",
            ),
            "DE": ABTestPricing(deltas=(0.0,) * 199 + (0.025,),
                                salt="chegg-de"),
            # France: no A/B testing at all (Table 5: 0.0%)
        }),
        TemporalDriftPricing(
            daily_sigma=0.035, trend=0.0015, jump_prob=0.004, jump_scale=0.12,
            updates_per_day=2, reversion=0.03, salt="chegg-drift",
        ),
    ])


def _amazon_policy(world: SheriffWorld) -> PricingPolicy:
    # only the retailer's own listings fold VAT in for identified
    # users; marketplace listings show the base price (keeps the
    # in-country difference rate below ~14%, Table 5)
    return VatInclusivePricing(world.geodb, coverage=0.15)


def named_store_specs() -> List[StoreSpec]:
    """Every retailer the paper names, with its calibrated policy."""
    flags = flagship_products()
    return [
        StoreSpec(
            domain="digitalrev.com", country="HK",
            categories=("pro-photo", "electronics"),
            policy_factory=lambda w: RegionalPricing(
                {"US": 1.19, "CA": 1.30, "BR": 1.35},
                coverage=0.95, magnitude_range=(0.8, 1.0), salt="digitalrev",
            ),
            currency_strategy="geo",
            flagship=(flags["iq280"],),
            popularity=1.4,
        ),
        StoreSpec(
            domain="steampowered.com", country="US", categories=("games",),
            policy_factory=lambda w: RegionalPricing(
                {"BR": 0.45, "RU": 0.40, "AR": 0.48, "TR": 0.50, "CN": 0.52},
                coverage=0.85, magnitude_range=(0.5, 1.0), salt="steam",
            ),
            popularity=2.2,
        ),
        StoreSpec(
            domain="abercrombie.com", country="US", categories=("clothing",),
            policy_factory=lambda w: RegionalPricing(
                {"JP": 1.9, "KR": 1.75, "CZ": 1.6, "ES": 1.45, "DE": 1.45},
                coverage=0.85, magnitude_range=(0.5, 1.3), salt="abercrombie",
            ),
            popularity=1.6,
        ),
        StoreSpec(
            domain="luisaviaroma.com", country="IT",
            categories=("clothing", "accessories"),
            policy_factory=lambda w: RegionalPricing(
                {"US": 1.6, "JP": 1.55, "KR": 1.9, "HK": 1.5, "RU": 2.2},
                coverage=0.8, magnitude_range=(0.3, 1.1), salt="luisaviaroma",
            ),
            catalog_size=10,
            popularity=1.3,
        ),
        StoreSpec(
            domain="overstock.com", country="US",
            categories=("household", "furniture"),
            policy_factory=lambda w: RegionalPricing(
                {"CA": 1.35, "AU": 1.4, "NZ": 1.35, "GB": 1.25},
                coverage=0.75, magnitude_range=(0.4, 1.0), salt="overstock",
            ),
            popularity=1.5,
        ),
        StoreSpec(
            domain="suitsupply.com", country="NL", categories=("clothing",),
            policy_factory=lambda w: RegionalPricing(
                {"US": 1.6, "JP": 1.5, "AU": 1.55, "HK": 1.45},
                coverage=0.8, magnitude_range=(0.4, 1.35), salt="suitsupply",
            ),
            popularity=1.1,
        ),
        StoreSpec(
            domain="aeropostale.com", country="US", categories=("clothing",),
            policy_factory=lambda w: RegionalPricing(
                {"JP": 1.8, "KR": 1.9, "ES": 1.5},
                coverage=0.7, magnitude_range=(0.4, 1.3), salt="aeropostale",
            ),
            popularity=1.0,
        ),
        StoreSpec(
            domain="raffaello-network.com", country="IT",
            categories=("accessories", "clothing"),
            policy_factory=lambda w: RegionalPricing(
                {"US": 1.7, "JP": 1.6, "HK": 1.5},
                coverage=0.7, magnitude_range=(0.4, 1.2), salt="raffaello",
            ),
            popularity=0.8,
        ),
        StoreSpec(
            domain="bookdepository.com", country="GB", categories=("books",),
            policy_factory=lambda w: RegionalPricing(
                {"US": 1.5, "BR": 1.8, "TH": 1.6, "NZ": 1.4},
                coverage=0.7, magnitude_range=(0.4, 1.2), salt="bookdep",
            ),
            popularity=1.4,
        ),
        StoreSpec(
            domain="anntaylor.com", country="US", categories=("clothing",),
            policy_factory=lambda w: RegionalPricing(
                {"JP": 3.6, "KR": 4.2, "CZ": 2.8},
                coverage=0.55, magnitude_range=(0.5, 1.0), salt="anntaylor",
            ),
            popularity=0.9,
        ),
        StoreSpec(
            domain="macys.com", country="US", categories=("clothing", "household"),
            policy_factory=lambda w: RegionalPricing(
                {"CA": 1.2, "GB": 1.15}, coverage=0.5,
                magnitude_range=(0.3, 0.8), salt="macys",
            ),
            popularity=1.3,
        ),
        StoreSpec(
            domain="tuscanyleather.it", country="IT", categories=("accessories",),
            policy_factory=lambda w: RegionalPricing(
                {"US": 1.45, "JP": 1.4}, coverage=0.75,
                magnitude_range=(0.4, 1.0), salt="tuscany",
            ),
            popularity=0.7,
        ),
        # the three within-country retailers of Sect. 6.3 / 7.3
        StoreSpec(
            domain="amazon.com", country="US",
            categories=("books", "electronics", "household", "games"),
            policy_factory=_amazon_policy,
            catalog_size=14,
            popularity=4.0,
        ),
        StoreSpec(
            domain="jcpenney.com", country="US",
            categories=("clothing", "cosmetics", "jewelry", "household",
                        "furniture", "accessories"),
            policy_factory=_jcpenney_policy,
            catalog_size=12,
            flagship=(flags["refrigerator"], flags["mud-mask"],
                      flags["shaving-cream"], flags["sofa"],
                      flags["leather-bag"]),
            popularity=2.0,
        ),
        StoreSpec(
            domain="chegg.com", country="US", categories=("books",),
            policy_factory=_chegg_policy,
            catalog_size=12,
            popularity=1.8,
        ),
    ]


def extra_pd_store_specs(n: int, seed: int = 31) -> List[StoreSpec]:
    """The remaining location-PD retailers (the paper found 76 total)."""
    rng = random.Random(seed)
    countries = ["US", "GB", "DE", "FR", "IT", "JP", "ES", "NL", "CA", "AU"]
    target_countries = ["US", "JP", "KR", "CA", "AU", "GB", "CZ", "BR", "NZ", "HK"]
    specs = []
    for i in range(n):
        domain = f"pd-store-{i:02d}.example"
        multipliers = {
            c: 1.0 + rng.uniform(0.08, 0.6)
            for c in rng.sample(target_countries, rng.randint(1, 3))
        }
        salt = f"pd-{i}"
        specs.append(
            StoreSpec(
                domain=domain,
                country=rng.choice(countries),
                categories=("clothing", "electronics", "household"),
                policy_factory=(
                    lambda w, m=multipliers, s=salt: RegionalPricing(
                        m, coverage=0.7, magnitude_range=(0.3, 1.0), salt=s
                    )
                ),
                catalog_size=6,
                popularity=0.4 + rng.random() * 0.4,
            )
        )
    return specs


def uniform_store_specs(n: int, seed: int = 32) -> List[StoreSpec]:
    """The honest long tail (most of the 1994 checked domains)."""
    rng = random.Random(seed)
    countries = ["US", "GB", "DE", "FR", "IT", "JP", "ES", "NL", "CA", "AU",
                 "SE", "CH", "PL", "GR", "BE"]
    specs = []
    for i in range(n):
        specs.append(
            StoreSpec(
                domain=f"shop-{i:03d}.example",
                country=rng.choice(countries),
                categories=("clothing", "electronics", "books", "household"),
                policy_factory=lambda w: UniformPricing(),
                catalog_size=5,
                popularity=0.05 + rng.random() * 0.3,
            )
        )
    return specs


def build_named_stores(
    world: SheriffWorld,
    specs: Optional[Sequence[StoreSpec]] = None,
    tracker_fraction: float = 0.8,
) -> Dict[str, EStore]:
    """Instantiate and register a roster of stores on a world."""
    if specs is None:
        specs = named_store_specs()
    rng = random.Random(11)
    tracker_domains = world.ecosystem.domains()
    stores: Dict[str, EStore] = {}
    for spec in specs:
        trackers = tuple(
            t for t in tracker_domains if rng.random() < tracker_fraction * 0.5
        )
        catalog = make_catalog(
            spec.domain, size=spec.catalog_size,
            rng=random.Random(zlib.crc32(spec.domain.encode())),
            categories=list(spec.categories),
            flagship=list(spec.flagship),
        )
        store = EStore(
            domain=spec.domain,
            country_code=spec.country,
            catalog=catalog,
            pricing=spec.policy_factory(world),
            geodb=world.geodb,
            rates=world.rates,
            tracker_domains=trackers,
            currency_strategy=spec.currency_strategy,
            converter_skew=spec.converter_skew,
        )
        world.internet.register(store)
        stores[spec.domain] = store
    return stores
