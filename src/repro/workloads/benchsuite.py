"""The unified benchmark suite: every benchmark, one report, one verdict.

``repro bench`` grew out of four separate CI steps — ``throughput``,
``storagebench``, ``cryptobench``, ``scalebench`` — each with its own
output file and its own pass/fail flag.  This module runs any subset of
them with one config, merges their reports into a single
``BENCH_all.json``, and evaluates every regression gate in one place,
so "did performance regress anywhere?" is one exit code instead of
four scattered ones.

The gates mirror the standalone CLI verbs exactly (same keys, same
comparison direction), so a suite run and the individual runs can never
disagree about a regression:

* ``throughput`` — top-level pipelined/serial speedup must *exceed*
  ``throughput_speedup``; with ``max_telemetry_overhead`` set, the full
  telemetry plane (metrics + journey tracing + flight recorder) must
  cost at most that fraction of wall time;
* ``storage`` — every engine's indexed path must beat the scan by more
  than ``index_speedup``;
* ``crypto`` — the fastexp path must beat naive arithmetic by more
  than ``crypto_speedup`` *and* the naive/fast lockstep must hold;
* ``scale`` — checks/sec at the largest fleet must be at least
  ``scaling_speedup`` times the single-server baseline;
* ``parse`` — the single-pass extraction engine must beat the legacy
  per-candidate Tags-Path walk by more than ``parse_speedup`` *and* the
  fast/legacy lockstep (same element, same text, same detected price)
  must hold;
* ``mesh`` — the multi-process wall-clock run must complete every check
  and sustain at least ``mesh_min_checks_per_sec`` checks/sec.  Opt-in
  (not in the default ``include``): it spawns real worker processes.

Set a gate to ``None`` to run that benchmark ungated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["BenchSuiteConfig", "run_benchsuite"]

#: every benchmark the suite knows, in run order
ALL_BENCHMARKS: Tuple[str, ...] = (
    "throughput", "storage", "crypto", "scale", "parse", "mesh",
)

#: what a bare suite run includes — "mesh" is opt-in because it spawns
#: real OS processes (CI runs it in the dedicated mesh-smoke job)
DEFAULT_BENCHMARKS: Tuple[str, ...] = (
    "throughput", "storage", "crypto", "scale", "parse",
)


@dataclass
class BenchSuiteConfig:
    """One suite run: which benchmarks, at what scale, gated how."""

    scale: str = "smoke"
    include: Tuple[str, ...] = DEFAULT_BENCHMARKS
    seed: Optional[int] = None
    #: gates (None = run the benchmark but don't gate on it)
    throughput_speedup: Optional[float] = 1.0
    max_telemetry_overhead: Optional[float] = None
    index_speedup: Optional[float] = 5.0
    crypto_speedup: Optional[float] = 3.0
    scaling_speedup: Optional[float] = 3.0
    parse_speedup: Optional[float] = 3.0
    #: mesh run shape + gate (wall-clock floor; generous on purpose —
    #: the gate catches hangs and lost checks, not scheduler noise)
    mesh_workers: int = 2
    mesh_min_checks_per_sec: Optional[float] = 1.0

    def __post_init__(self) -> None:
        unknown = sorted(set(self.include) - set(ALL_BENCHMARKS))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {', '.join(unknown)}; "
                f"choose from {', '.join(ALL_BENCHMARKS)}"
            )
        if self.scale not in ("smoke", "default"):
            raise ValueError(
                f"scale must be 'smoke' or 'default', got {self.scale!r}"
            )


def _gate(
    name: str, value: Optional[float], bound: float, kind: str, detail: str
) -> Dict[str, Any]:
    """One gate verdict.  ``kind`` is the comparison: ``gt`` (value must
    exceed the bound), ``ge``, or ``le`` (value must stay under it)."""
    if value is None:
        passed = False
    elif kind == "gt":
        passed = value > bound
    elif kind == "ge":
        passed = value >= bound
    else:
        passed = value <= bound
    return {
        "gate": name,
        "value": value if value is None else round(float(value), 4),
        "bound": bound,
        "comparison": kind,
        "passed": passed,
        "detail": detail,
    }


def _run_throughput(config: BenchSuiteConfig, gates: List[Dict[str, Any]]):
    from repro.workloads.throughput import (
        ThroughputConfig,
        measure_telemetry_overhead,
        run_throughput,
    )

    bench_config = (
        ThroughputConfig.smoke_scale()
        if config.scale == "smoke"
        else ThroughputConfig()
    )
    if config.seed is not None:
        bench_config.seed = config.seed
    report = run_throughput(bench_config)
    if config.throughput_speedup is not None:
        gates.append(_gate(
            "throughput_speedup",
            report["speedup_at_top_level"],
            config.throughput_speedup, "gt",
            "pipelined vs serial checks/sec at the top concurrency level",
        ))
    if config.max_telemetry_overhead is not None:
        overhead = measure_telemetry_overhead(bench_config)
        report["telemetry_overhead"] = overhead
        gates.append(_gate(
            "telemetry_overhead",
            overhead["overhead_fraction"],
            config.max_telemetry_overhead, "le",
            "wall-clock cost of the full telemetry plane on the hot path",
        ))
    return report


def _run_storage(config: BenchSuiteConfig, gates: List[Dict[str, Any]]):
    from repro.workloads.storagebench import (
        StorageBenchConfig,
        run_storagebench,
    )

    bench_config = (
        StorageBenchConfig.smoke_scale()
        if config.scale == "smoke"
        else StorageBenchConfig()
    )
    if config.seed is not None:
        bench_config.seed = config.seed
    report = run_storagebench(bench_config)
    if config.index_speedup is not None:
        gates.append(_gate(
            "index_speedup",
            report["min_index_speedup"],
            config.index_speedup, "gt",
            "worst engine's indexed lookup vs full-table scan",
        ))
    return report


def _run_crypto(config: BenchSuiteConfig, gates: List[Dict[str, Any]]):
    from repro.workloads.cryptobench import CryptoBenchConfig, run_cryptobench

    bench_config = (
        CryptoBenchConfig.smoke_scale()
        if config.scale == "smoke"
        else CryptoBenchConfig()
    )
    if config.seed is not None:
        bench_config.seed = config.seed
    report = run_cryptobench(bench_config)
    if config.crypto_speedup is not None:
        gates.append(_gate(
            "crypto_speedup",
            report["gate_speedup"],
            config.crypto_speedup, "gt",
            "fastexp vs naive encrypt+distance (test group, 1 worker)",
        ))
        gates.append(_gate(
            "crypto_lockstep",
            1.0 if report["lockstep_ok"] else 0.0,
            1.0, "ge",
            "naive and fast paths produced bit-identical centroids",
        ))
    return report


def _run_scale(config: BenchSuiteConfig, gates: List[Dict[str, Any]]):
    from repro.workloads.scalebench import ScaleBenchConfig, run_scalebench

    bench_config = (
        ScaleBenchConfig.smoke_scale()
        if config.scale == "smoke"
        else ScaleBenchConfig()
    )
    if config.seed is not None:
        bench_config.seed = config.seed
    report = run_scalebench(bench_config)
    if config.scaling_speedup is not None:
        gates.append(_gate(
            "scaling_speedup",
            report["scaling"]["speedup"],
            config.scaling_speedup, "ge",
            "checks/sec at the largest fleet vs the baseline",
        ))
    return report


def _run_parse(config: BenchSuiteConfig, gates: List[Dict[str, Any]]):
    from repro.workloads.parsebench import ParseBenchConfig, run_parsebench

    bench_config = (
        ParseBenchConfig.smoke_scale()
        if config.scale == "smoke"
        else ParseBenchConfig()
    )
    if config.seed is not None:
        bench_config.seed = config.seed
    report = run_parsebench(bench_config)
    if config.parse_speedup is not None:
        gates.append(_gate(
            "parse_speedup",
            report["gate_speedup"],
            config.parse_speedup, "gt",
            "single-pass extraction engine vs legacy Tags-Path walk",
        ))
        gates.append(_gate(
            "parse_lockstep",
            1.0 if report["lockstep_ok"] else 0.0,
            1.0, "ge",
            "fast and legacy extraction agreed on every element and price",
        ))
    return report


def _run_mesh(config: BenchSuiteConfig, gates: List[Dict[str, Any]]):
    from repro.workloads.throughput import ThroughputConfig, run_mesh_throughput

    bench_config = (
        ThroughputConfig.smoke_scale()
        if config.scale == "smoke"
        else ThroughputConfig()
    )
    if config.seed is not None:
        bench_config.seed = config.seed
    report = run_mesh_throughput(bench_config, n_workers=config.mesh_workers)
    if config.mesh_min_checks_per_sec is not None:
        gates.append(_gate(
            "mesh_completed",
            report["completed_fraction"],
            1.0, "ge",
            "every farmed check came back from the worker fleet",
        ))
        gates.append(_gate(
            "mesh_checks_per_sec",
            report["checks_per_sec_wall"],
            config.mesh_min_checks_per_sec, "ge",
            "wall-clock checks/sec across the worker processes",
        ))
    return report


_RUNNERS = {
    "throughput": _run_throughput,
    "storage": _run_storage,
    "crypto": _run_crypto,
    "scale": _run_scale,
    "parse": _run_parse,
    "mesh": _run_mesh,
}


def run_benchsuite(
    config: Optional[BenchSuiteConfig] = None,
) -> Dict[str, Any]:
    """Run the selected benchmarks, evaluate every gate, merge reports."""
    config = config if config is not None else BenchSuiteConfig()
    benchmarks: Dict[str, Any] = {}
    gates: List[Dict[str, Any]] = []
    for name in ALL_BENCHMARKS:
        if name not in config.include:
            continue
        benchmarks[name] = _RUNNERS[name](config, gates)
    return {
        "suite": "unified benchmark suite",
        "scale": config.scale,
        "included": [n for n in ALL_BENCHMARKS if n in config.include],
        "benchmarks": benchmarks,
        "gates": gates,
        "all_passed": all(g["passed"] for g in gates),
    }
