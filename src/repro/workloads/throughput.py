"""Throughput benchmark: serial vs pipelined price-check execution.

The Table-1 question, asked of our own architecture: how many price
checks per second can the back-end sustain as concurrent users grow?
Each check fans out to the full IPC fleet (30 nodes by default, the
paper's deployment) plus PPCs, so the fetch fan-out dominates; the
pipelined engine overlaps those fetches on per-server worker pools
while the serial baseline performs one fetch at a time.

Both modes execute the *same* fetches with the same seed — the rows
produced are byte-identical — and differ only in how the fetch
durations pack onto the simulated timeline:

* **serial** — one fetch in flight globally; elapsed time is the sum of
  every fetch duration (the pre-engine execution model);
* **pipelined** — each server's bounded worker pool runs fetches
  concurrently and jobs from concurrent users overlap; elapsed time is
  the event-loop makespan.

``run_throughput`` sweeps the concurrency levels (1/8/64 users by
default) and returns a JSON-ready report; the CLI command
``repro throughput`` writes it to ``BENCH_throughput.json``.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clients.ipc import DEFAULT_IPC_SITES
from repro.core.sheriff import PriceSheriff, SheriffWorld
from repro.obs import Telemetry
from repro.workloads.stores import build_named_stores, uniform_store_specs

#: countries users are drawn from (round robin), a coarse cut of the
#: deployment's geography (Sect. 6.1)
USER_COUNTRIES: Tuple[str, ...] = ("ES", "US", "GB", "DE", "FR", "JP", "CA", "IT")


@dataclass
class ThroughputConfig:
    """Knobs of one benchmark run."""

    seed: int = 2017
    #: concurrent-user levels to sweep
    levels: Tuple[int, ...] = (1, 8, 64)
    #: price checks executed per level (each level reuses a fresh world)
    total_checks: int = 64
    #: the IPC fleet every check fans out to (default: the paper's 30)
    ipc_sites: Sequence[Tuple[str, str, float]] = DEFAULT_IPC_SITES
    n_servers: int = 4
    n_stores: int = 8
    #: per-server fetch worker pool size (pipelined mode)
    max_fetch_workers: int = 16
    #: page-cache TTL in simulated seconds (applies to both modes, so
    #: rows stay identical; 0 disables)
    page_cache_ttl: float = 30.0

    @classmethod
    def smoke_scale(cls) -> "ThroughputConfig":
        """A reduced instance for CI perf-smoke and unit tests."""
        return cls(
            levels=(1, 8),
            total_checks=16,
            ipc_sites=DEFAULT_IPC_SITES[:10],
            n_servers=2,
            n_stores=4,
        )


def _build_deployment(
    config: ThroughputConfig, pipelined: bool,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[SheriffWorld, PriceSheriff, List[str]]:
    """A fresh seeded world + sheriff + product URL roster.

    Dispatch is round robin so a wave of concurrent submissions spreads
    over every Measurement server's worker pool (least-jobs degenerates
    here: the simulated submit reports completion eagerly, so pending
    counts never differentiate the servers).
    """
    world = SheriffWorld.create(seed=config.seed)
    specs = uniform_store_specs(config.n_stores, seed=config.seed + 3)
    stores = build_named_stores(world, specs)
    sheriff = PriceSheriff(
        world,
        n_measurement_servers=config.n_servers,
        ipc_sites=config.ipc_sites,
        dispatch_policy="round_robin",
        pipelined=pipelined,
        max_fetch_workers=config.max_fetch_workers,
        page_cache_ttl=config.page_cache_ttl,
        telemetry=telemetry,
    )
    urls: List[str] = []
    for spec in specs:
        store = stores[spec.domain]
        for product in store.catalog.products:
            urls.append(store.product_url(product.product_id))
    return world, sheriff, urls


def _run_mode(
    config: ThroughputConfig, n_users: int, pipelined: bool,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, object]:
    """Run ``total_checks`` checks at one concurrency level, one mode.

    With a :class:`Telemetry` attached, the report entry additionally
    carries the p50/p95/p99 per-check latency read back from the
    ``sheriff_check_latency_seconds`` histogram.
    """
    world, sheriff, urls = _build_deployment(config, pipelined, telemetry)
    rng = random.Random(config.seed + 97)
    addons = [
        sheriff.install_addon(
            world.make_browser(USER_COUNTRIES[i % len(USER_COUNTRIES)])
        )
        for i in range(n_users)
    ]
    completed = 0
    service_seconds = 0.0
    rows_total = 0
    start = sheriff.engine.now
    issued = 0
    while issued < config.total_checks:
        wave_size = min(n_users, config.total_checks - issued)
        wave = []
        for u in range(wave_size):
            addon = addons[u]
            url = urls[(issued + u) % len(urls)]
            wave.append((addon, addon.submit_price_check(url)))
        for addon, pending in wave:
            service_seconds += pending.handle.service_seconds
            result = addon.collect(pending)
            rows_total += len(result.rows)
            completed += 1
        issued += wave_size
    elapsed = (sheriff.engine.now - start) if pipelined else service_seconds
    elapsed = max(elapsed, 1e-9)
    stats = sheriff.measurement_stats()
    entry: Dict[str, object] = {
        "mode": "pipelined" if pipelined else "serial",
        "users": n_users,
        "checks": completed,
        "rows": rows_total,
        "elapsed_s": round(elapsed, 3),
        "checks_per_sec": round(completed / elapsed, 4),
        "cache_hits": sheriff.engine.cache.hits,
        "cache_misses": sheriff.engine.cache.misses,
        "batched_writes": sheriff.db.batched_writes,
        "peak_workers": max(
            (p.peak_busy for p in sheriff.engine._pools.values()), default=0
        ),
    }
    latency = sheriff.telemetry.registry.get("sheriff_check_latency_seconds")
    if latency is not None:
        entry["latency_percentiles"] = {
            name: None if value is None else round(value, 4)
            for name, value in latency.percentiles().items()
        }
    return entry


def run_throughput(config: Optional[ThroughputConfig] = None) -> Dict[str, object]:
    """Sweep the levels in both modes; return the BENCH report dict.

    Every run carries a metrics-only telemetry plane so the report can
    quote per-check latency percentiles from the engine's histogram;
    metrics never perturb the simulated timeline, so ``checks_per_sec``
    is what an uninstrumented run would report.
    """
    config = config if config is not None else ThroughputConfig()
    levels = []
    for n_users in config.levels:
        serial = _run_mode(
            config, n_users, pipelined=False,
            telemetry=Telemetry(metrics_only=True),
        )
        pipelined = _run_mode(
            config, n_users, pipelined=True,
            telemetry=Telemetry(metrics_only=True),
        )
        speedup = pipelined["checks_per_sec"] / max(serial["checks_per_sec"], 1e-9)
        levels.append(
            {
                "users": n_users,
                "checks": serial["checks"],
                "serial": serial,
                "pipelined": pipelined,
                "speedup": round(speedup, 2),
            }
        )
    return {
        "benchmark": "price-check throughput (checks/sec, serial vs pipelined)",
        "config": {
            **asdict(config),
            "ipc_sites": len(config.ipc_sites),
            "levels": list(config.levels),
        },
        "levels": levels,
        "max_speedup": max(level["speedup"] for level in levels),
        "speedup_at_top_level": levels[-1]["speedup"],
    }


def run_mesh_throughput(
    config: Optional[ThroughputConfig] = None,
    n_workers: int = 2,
    concurrency: Optional[int] = None,
) -> Dict[str, object]:
    """Run the pipelined engine across ``n_workers`` OS processes.

    Unlike the sim sweep above, this measures **wall-clock** checks/sec:
    each worker process builds its own seeded world and serves
    ``check_price`` over the socket transport, so the number reflects
    real process scheduling and real serialization cost.  The report
    lands in BENCH_throughput.json under ``"mesh"`` next to the sim
    numbers — the sim answers "does pipelining help", the mesh answers
    "what does this box actually sustain".
    """
    # imported lazily: sim-only runs shouldn't pull in subprocess machinery
    from repro.mesh.launch import MeshLauncher, WorkerSpec

    config = config if config is not None else ThroughputConfig()
    spec = WorkerSpec(
        seed=config.seed,
        n_stores=config.n_stores,
        n_servers=config.n_servers,
        n_ipcs=len(config.ipc_sites),
        n_users=max(config.levels),
        max_fetch_workers=config.max_fetch_workers,
        page_cache_ttl=config.page_cache_ttl,
    )
    launcher = MeshLauncher(n_workers=n_workers, spec=spec)
    try:
        hellos = launcher.start()
        report = launcher.run_checks(
            total=config.total_checks, concurrency=concurrency
        )
    finally:
        exit_codes = launcher.shutdown()
    entry = report.to_dict()
    entry["protocol"] = hellos[0]["protocol"] if hellos else None
    entry["exit_codes"] = exit_codes
    return entry


def traced_run(
    config: Optional[ThroughputConfig] = None, n_users: Optional[int] = None
) -> Telemetry:
    """One pipelined run with the full telemetry plane (spans included).

    Returns the :class:`Telemetry` whose tracer holds every job's span
    tree and whose registry holds the run's metrics — the CI perf-smoke
    exports both as artifacts.
    """
    config = config if config is not None else ThroughputConfig()
    telemetry = Telemetry()
    _run_mode(
        config,
        n_users if n_users is not None else config.levels[-1],
        pipelined=True,
        telemetry=telemetry,
    )
    return telemetry


def measure_telemetry_overhead(
    config: Optional[ThroughputConfig] = None, repeats: int = 3
) -> Dict[str, float]:
    """Wall-clock cost of the full telemetry plane on the hot path.

    The simulated timeline is identical with telemetry on or off by
    construction, so the honest cost measure is host wall-clock time:
    best-of-``repeats`` for one pipelined run at the top concurrency
    level, telemetry off vs fully on — metrics, span tracing (the
    per-job journey chain included), and the flight recorder, the same
    plane ``repro journey`` reads.  The CI perf-smoke gates on
    ``overhead_fraction`` staying under 10%.
    """
    config = config if config is not None else ThroughputConfig()
    n_users = config.levels[-1]

    def best_wall(make_telemetry) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            _run_mode(config, n_users, pipelined=True,
                      telemetry=make_telemetry())
            best = min(best, time.perf_counter() - t0)
        return best

    off = best_wall(lambda: None)
    on = best_wall(lambda: Telemetry())
    return {
        "telemetry_off_wall_s": round(off, 4),
        "telemetry_on_wall_s": round(on, 4),
        "overhead_fraction": round(max(0.0, on / max(off, 1e-9) - 1.0), 4),
    }
