"""Extraction-engine benchmark: legacy vs single-pass fast path.

The analysis path runs once per vantage of every price check — Tags-Path
extraction over the fetched page, currency detection over the selected
string, then the cross-vantage variation report — so at million-user
scale it executes millions of times per sweep.  This workload times the
fast extraction engine of :mod:`repro.core.tagspath`
(``use_fast_extract=True``: one :class:`ExtractionIndex` built during
the parse, suffix-pruned LCS, whole-extraction memo) against the legacy
per-candidate re-walk on the same corpus of seeded store-layout variant
pages, and reports the supporting micro numbers for the compiled
currency tables and the streaming :class:`VariationAccumulator`.

Like the crypto bench, every timed sweep is paired with an **in-run
lockstep check**: both extraction modes run on the same parsed trees and
must pick the *same element* (object identity), yield the same text, and
detect the same price — fast matching that chose a different candidate
would be a correctness bug, not a speedup.

``run_parsebench`` returns a JSON-ready report; ``repro parsebench``
writes it to ``BENCH_parse.json`` and the CI perf-smoke job gates on
``gate_speedup`` (extraction, duplicate-heavy corpus) staying above 3x.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.detector import VariationAccumulator, analyze_rows
from repro.core.pricecheck import ResultRow
from repro.core.tagspath import (
    EXTRACTION_STATS,
    TagsPath,
    build_tags_path,
    clear_extraction_memo,
    extract_price_element,
    extract_price_text,
)
from repro.currency.detect import detect_price, format_price
from repro.currency.rates import ExchangeRateProvider
from repro.net.geo import GeoDatabase
from repro.web.catalog import make_catalog
from repro.web.html import find_all, parse
from repro.web.pricing import RequestContext, UniformPricing
from repro.web.store import EStore


@dataclass
class ParseBenchConfig:
    """Knobs of one benchmark run.

    The corpus is ``n_layouts × products_per_layout`` recorded paths,
    each replayed against ``n_vantages`` fetched pages of which
    ``duplicate_fraction`` are byte-identical to another vantage's page
    — the deployed mix, where only a minority of simultaneous fetches
    actually differ.  Keep the corpus below the extraction memo bound
    (:data:`repro.core.tagspath.EXTRACTION_MEMO_MAX`) so the timed fast
    pass measures the engine, not memo eviction.
    """

    seed: int = 2017
    #: distinct store layouts (each picks markup, nav, strip shapes)
    n_layouts: int = 12
    #: recorded Tags Paths per layout
    products_per_layout: int = 2
    #: fetched pages matched per recorded path
    n_vantages: int = 8
    #: fraction of vantages that saw a byte-identical page (the paper's
    #: deployment found only a minority of simultaneous fetches differ)
    duplicate_fraction: float = 0.67
    catalog_size: int = 8
    #: best-of repeats for every timed pass
    repeats: int = 3

    @classmethod
    def smoke_scale(cls) -> "ParseBenchConfig":
        """A reduced instance for CI perf-smoke and unit tests."""
        return cls(n_layouts=6, products_per_layout=2, n_vantages=6,
                   repeats=2)


@dataclass
class _Check:
    """One recorded path plus the vantage pages it is replayed on."""

    path: TagsPath
    pages: List[str] = field(default_factory=list)


def build_corpus(config: ParseBenchConfig) -> List[_Check]:
    """Seeded layout-variant pages with recorded Tags Paths."""
    geodb = GeoDatabase()
    rates = ExchangeRateProvider()
    rng = random.Random(config.seed)
    corpus: List[_Check] = []
    for layout in range(config.n_layouts):
        store = EStore(
            domain="bench.example",
            country_code="ES",
            catalog=make_catalog(
                "bench.example", size=config.catalog_size,
                rng=random.Random(config.seed + 1),
            ),
            pricing=UniformPricing(),
            geodb=geodb,
            rates=rates,
            layout_seed=config.seed * 1000 + layout,
        )

        def ctx(nonce: int) -> RequestContext:
            return RequestContext(
                time=0.0,
                location=geodb.make_location("ES", "Madrid"),
                request_nonce=nonce,
            )

        for slot in range(config.products_per_layout):
            product = store.catalog.products[slot % config.catalog_size]
            initiator = store.fetch(product.path, ctx(0))
            doc = parse(initiator.html)
            product_div = find_all(doc, cls="product")[0]
            price_el = find_all(
                product_div, tag="span", cls=store.price_class
            )[0]
            check = _Check(path=build_tags_path(doc, price_el))
            n_distinct = max(
                1,
                round(config.n_vantages * (1.0 - config.duplicate_fraction)),
            )
            distinct = [
                store.fetch(product.path, ctx(rng.randint(1, 10_000))).html
                for _ in range(n_distinct)
            ]
            for v in range(config.n_vantages):
                check.pages.append(distinct[v % n_distinct])
            corpus.append(check)
    return corpus


def _time_extraction_pass(
    corpus: List[_Check], use_fast_extract: bool
) -> Tuple[float, List[Optional[str]]]:
    """One timed sweep over every (page, path) pair of the corpus."""
    clear_extraction_memo()
    texts: List[Optional[str]] = []
    started = time.perf_counter()
    for check in corpus:
        for page in check.pages:
            texts.append(
                extract_price_text(
                    page, check.path, use_fast_extract=use_fast_extract
                )
            )
    return time.perf_counter() - started, texts


def _best_of_extraction(
    corpus: List[_Check], use_fast_extract: bool, repeats: int
) -> Tuple[float, List[Optional[str]]]:
    best = float("inf")
    texts: List[Optional[str]] = []
    for _ in range(max(1, repeats)):
        elapsed, texts = _time_extraction_pass(corpus, use_fast_extract)
        best = min(best, elapsed)
    return best, texts


def _verify_lockstep(corpus: List[_Check]) -> bool:
    """Both modes must pick the same element, text, and DetectedPrice."""
    for check in corpus:
        for page in check.pages:
            root = parse(page)
            legacy_el = extract_price_element(
                root, check.path, use_fast_extract=False
            )
            fast_el = extract_price_element(
                root, check.path, use_fast_extract=True
            )
            if fast_el is not legacy_el:
                return False
            legacy_text = extract_price_text(
                page, check.path, use_fast_extract=False
            )
            clear_extraction_memo()
            fast_text = extract_price_text(
                page, check.path, use_fast_extract=True
            )
            if fast_text != legacy_text:
                return False
            if legacy_text is not None and (
                detect_price(legacy_text) != detect_price(fast_text)
            ):
                return False
    return True


def _currency_corpus(config: ParseBenchConfig) -> List[str]:
    rng = random.Random(config.seed ^ 0xC0DE)
    styles = ("iso_tight", "iso_space", "symbol", "symbol_suffix",
              "continental", "custom")
    codes = ("USD", "EUR", "GBP", "JPY", "CZK", "SEK", "BRL", "CAD")
    return [
        format_price(
            round(rng.uniform(1, 20_000), 2),
            rng.choice(codes),
            style=rng.choice(styles),
        )
        for _ in range(400)
    ]


def _bench_currency(config: ParseBenchConfig) -> Dict[str, object]:
    """Detection throughput: cold (memo cleared) vs warm (memoized)."""
    texts = _currency_corpus(config)
    cold = warm = float("inf")
    for _ in range(max(1, config.repeats)):
        detect_price.cache_clear()
        started = time.perf_counter()
        for text in texts:
            detect_price(text)
        cold = min(cold, time.perf_counter() - started)
        started = time.perf_counter()
        for text in texts:
            detect_price(text)
        warm = min(warm, time.perf_counter() - started)
    return {
        "n_texts": len(texts),
        "cold_s": round(cold, 6),
        "warm_s": round(warm, 6),
        "cold_per_sec": round(len(texts) / max(cold, 1e-12)),
        "warm_per_sec": round(len(texts) / max(warm, 1e-12)),
    }


def _detector_rows(config: ParseBenchConfig) -> List[ResultRow]:
    rng = random.Random(config.seed ^ 0xD7C)
    countries = ("ES", "DE", "FR", "US", "GB", "IT", "SE", "PL")
    rows = []
    for i in range(240):
        amount = round(rng.uniform(50, 150), 2)
        rows.append(ResultRow(
            kind="PPC", proxy_id=f"p{i}", country=rng.choice(countries),
            region="r", city="c", original_text=None,
            detected_amount=amount, detected_currency="EUR",
            converted_value=amount, amount_eur=amount,
        ))
    return rows


def _bench_detector(config: ParseBenchConfig) -> Dict[str, object]:
    """Report-after-every-row: batch recompute vs streaming accumulator."""
    rows = _detector_rows(config)
    geodb = GeoDatabase()
    batch = streaming = float("inf")
    for _ in range(max(1, config.repeats)):
        started = time.perf_counter()
        for i in range(1, len(rows) + 1):
            batch_report = analyze_rows(rows[:i], geodb)
        batch = min(batch, time.perf_counter() - started)
        started = time.perf_counter()
        accumulator = VariationAccumulator()
        for row in rows:
            accumulator.add(row)
            streaming_report = accumulator.report(geodb)
        streaming = min(streaming, time.perf_counter() - started)
    return {
        "n_rows": len(rows),
        "batch_s": round(batch, 6),
        "streaming_s": round(streaming, 6),
        "speedup": round(batch / max(streaming, 1e-12), 2),
        "reports_identical": batch_report == streaming_report,
    }


def run_parsebench(
    config: Optional[ParseBenchConfig] = None,
) -> Dict[str, object]:
    """Run the full sweep; return the ``BENCH_parse.json`` report dict."""
    config = config if config is not None else ParseBenchConfig()
    corpus = build_corpus(config)
    n_pairs = sum(len(c.pages) for c in corpus)

    lockstep_ok = _verify_lockstep(corpus)
    legacy_s, legacy_texts = _best_of_extraction(
        corpus, use_fast_extract=False, repeats=config.repeats
    )
    EXTRACTION_STATS.reset()
    fast_s, fast_texts = _best_of_extraction(
        corpus, use_fast_extract=True, repeats=config.repeats
    )
    lockstep_ok = lockstep_ok and (legacy_texts == fast_texts)
    speedup = round(legacy_s / max(fast_s, 1e-12), 2)

    return {
        "benchmark": "tags-path extraction (legacy vs single-pass engine)",
        "config": asdict(config),
        "extraction": {
            "recorded_paths": len(corpus),
            "page_path_pairs": n_pairs,
            "legacy_s": round(legacy_s, 6),
            "fast_s": round(fast_s, 6),
            "speedup": speedup,
            "stats": EXTRACTION_STATS.snapshot(),
        },
        "currency": _bench_currency(config),
        "detector": _bench_detector(config),
        "lockstep_ok": lockstep_ok,
        "gate_speedup": speedup,
    }
