"""Schnorr groups: prime-order subgroups of Z_p* with p a safe prime.

System setup in the paper "generates the description of a multiplicative
group G of order q where Decisional Diffie-Hellman is hard, and a
generator g of G" (App. 10.4).  We use safe primes p = 2q + 1 and take g
to be a quadratic residue, so g generates the order-q subgroup.

Three parameter sources:

* :data:`TEST_GROUP` — a fixed 64-bit group for unit tests (fast, and
  obviously not secure);
* :func:`SchnorrGroup.generate` — Miller–Rabin-based safe-prime search,
  practical up to ~256 bits, used by the Fig. 8(c) benchmark;
* :data:`RFC3526_GROUP_2048` — the standardized 2048-bit MODP prime
  (a safe prime) with generator 4, production-grade parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
                 59, 61, 67, 71, 73, 79, 83, 89, 97]


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng if rng is not None else random.Random(0xC0FFEE ^ n)
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class SchnorrGroup:
    """The subgroup of order q of Z_p*, with p = 2q + 1 a safe prime."""

    p: int  # safe prime modulus
    q: int  # subgroup order, (p - 1) // 2
    g: int  # generator of the order-q subgroup (a quadratic residue)

    def __post_init__(self) -> None:
        if self.p != 2 * self.q + 1:
            raise ValueError("p must equal 2q + 1")
        if not (1 < self.g < self.p):
            raise ValueError("generator outside group range")
        if pow(self.g, self.q, self.p) != 1:
            raise ValueError("generator does not have order q")

    # -- group operations ---------------------------------------------------
    def exp(self, base: int, exponent: int) -> int:
        """base^exponent mod p, with exponents reduced mod q."""
        return pow(base, exponent % self.q, self.p)

    def gexp(self, exponent: int) -> int:
        """g^exponent mod p."""
        return self.exp(self.g, exponent)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def random_exponent(self, rng: random.Random) -> int:
        """Uniform exponent in [1, q)."""
        return rng.randrange(1, self.q)

    def powers_of(self, base: int):
        """A shared fixed-base exponentiation table for ``base``.

        Returns a :class:`repro.crypto.fastexp.FixedBaseTable` out of
        the module-level LRU cache; ``powers_of(g).pow(e)`` is
        bit-identical to :meth:`exp` but several times faster once the
        table is warm.  Worker processes forked after the first call
        inherit the table copy-on-write.
        """
        from repro.crypto import fastexp

        return fastexp.fixed_base(self.p, self.q, base)

    @property
    def bits(self) -> int:
        return self.p.bit_length()

    # -- parameter generation --------------------------------------------
    @staticmethod
    def generate(bits: int, rng: Optional[random.Random] = None) -> "SchnorrGroup":
        """Search for a safe prime of the given size and build the group."""
        if bits < 8:
            raise ValueError("group too small")
        rng = rng if rng is not None else random.Random(2017)
        while True:
            q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
            if not is_probable_prime(q, rounds=20, rng=rng):
                continue
            p = 2 * q + 1
            if not is_probable_prime(p, rounds=20, rng=rng):
                continue
            # 4 = 2^2 is always a quadratic residue → order q.
            return SchnorrGroup(p=p, q=q, g=4)


#: 64-bit test group (p = 2q+1 safe prime); fast enough for unit tests.
#: p = 18446744073709550147? — instead generated deterministically below.
def _make_test_group() -> SchnorrGroup:
    return SchnorrGroup.generate(64, random.Random(42))


TEST_GROUP = _make_test_group()

#: 256-bit benchmark group: the result of
#: ``SchnorrGroup.generate(256, random.Random(2017))`` pinned as a
#: constant so ``repro cryptobench`` never pays the safe-prime search.
_BENCH_P_256 = int(
    "D077C6C03E223C53ECFE22E02915B7608EDD4EFB43013B48A402118D1042020F", 16
)

BENCH_GROUP_256 = SchnorrGroup(
    p=_BENCH_P_256,
    q=(_BENCH_P_256 - 1) // 2,
    g=4,
)

#: RFC 3526 group 14 (2048-bit MODP).  The modulus is a safe prime; we
#: use generator 4 so the generator provably has order q.
_RFC3526_P_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)

RFC3526_GROUP_2048 = SchnorrGroup(
    p=_RFC3526_P_2048,
    q=(_RFC3526_P_2048 - 1) // 2,
    g=4,
)
