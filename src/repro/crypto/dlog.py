"""Bounded discrete logarithm via baby-step/giant-step.

"Because encryption is at the exponent, recovering the original
plaintext requires computing the discrete logarithm … this operation is
feasible if the range of admissible cleartexts is small" (App. 10.4).
Profile coordinates, squared distances, and cluster sums are all small
bounded integers, so BSGS with a per-(group, bound) cached baby-step
table makes decryption cheap.

The cache is LRU-bounded (:data:`MAX_CACHED_TABLES`): every distinct
``(group, bound)`` pair used to leak its table forever, which matters
once deployments decrypt under many bounds (cluster cardinalities vary
per iteration).  Each entry also pins the giant-step stride ``g^{-m}``
— one exponentiation plus one inversion that earlier versions recomputed
on *every* ``discrete_log`` call, twice the cost of the average search
itself at production parameters.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict

from repro.crypto import fastexp
from repro.crypto.group import SchnorrGroup


class DiscreteLogError(ValueError):
    """The element has no discrete log within the stated bound."""


#: LRU cap on cached baby-step tables; each entry holds ~sqrt(bound)
#: group elements, so the bound keeps worst-case memory proportional to
#: the few bounds a deployment actually decrypts under
MAX_CACHED_TABLES = 32


class _Entry:
    """One cached BSGS context: baby table + giant-step stride."""

    __slots__ = ("table", "giant")

    def __init__(self, table: Dict[int, int], giant: int) -> None:
        self.table = table
        self.giant = giant


#: (p, g, m) → _Entry, most-recently-used last
_TABLE_CACHE: "OrderedDict[Tuple[int, int, int], _Entry]" = OrderedDict()


class _Metrics:
    """Module-level instrument slots, ``None`` until telemetry binds."""

    __slots__ = ("cache", "calls", "evictions")

    def __init__(self) -> None:
        self.cache = None
        self.calls = None
        self.evictions = None


_METRICS = _Metrics()


def bind_instruments(cache=None, calls=None, evictions=None) -> None:
    """Attach ``sheriff_crypto_dlog_*`` instruments (see crypto.obs)."""
    _METRICS.cache = cache
    _METRICS.calls = calls
    _METRICS.evictions = evictions
    if cache is not None:
        cache.set(len(_TABLE_CACHE))


def _entry(group: SchnorrGroup, m: int) -> _Entry:
    key = (group.p, group.g, m)
    entry = _TABLE_CACHE.get(key)
    if entry is not None:
        _TABLE_CACHE.move_to_end(key)
        return entry
    table: Dict[int, int] = {}
    value = 1
    for j in range(m):
        table.setdefault(value, j)
        value = group.mul(value, group.g)
    # giant-step stride g^{-m}: use the shared fixed-base table for g
    # when the hot path already built one, else a raw exponentiation
    gtab = fastexp.cached_table(group.p, group.g)
    g_m = gtab.pow(m) if gtab is not None else group.gexp(m)
    entry = _Entry(table=table, giant=group.inv(g_m))
    _TABLE_CACHE[key] = entry
    while len(_TABLE_CACHE) > MAX_CACHED_TABLES:
        _TABLE_CACHE.popitem(last=False)
        if _METRICS.evictions is not None:
            _METRICS.evictions.inc()
    if _METRICS.cache is not None:
        _METRICS.cache.set(len(_TABLE_CACHE))
    return entry


def prewarm(group: SchnorrGroup, bound: int) -> None:
    """Build the BSGS context for ``bound`` ahead of time.

    Called by the Aggregator before forking its worker pool so every
    worker inherits the table copy-on-write instead of rebuilding it.
    """
    if bound >= 0:
        _entry(group, max(1, math.isqrt(bound) + 1))


def discrete_log(group: SchnorrGroup, element: int, bound: int) -> int:
    """Find x in [0, bound] with g^x ≡ element (mod p).

    Raises :class:`DiscreteLogError` when no such x exists — which, in
    the protocols, signals either a corrupted ciphertext or a plaintext
    outside the agreed range.
    """
    if bound < 0:
        raise ValueError("bound must be non-negative")
    m = max(1, math.isqrt(bound) + 1)
    entry = _entry(group, m)
    if _METRICS.calls is not None:
        _METRICS.calls.inc()
    table = entry.table
    giant = entry.giant
    p = group.p
    gamma = element % p
    # every x ≤ bound decomposes as x = i·m + j with j < m and
    # i ≤ bound // m, so exactly bound // m + 1 giant steps suffice
    for i in range(bound // m + 1):
        j = table.get(gamma)
        if j is not None:
            x = i * m + j
            if x <= bound:
                return x
        gamma = gamma * giant % p
    raise DiscreteLogError(f"no discrete log within bound {bound}")


def dlog_cache_info() -> Dict[str, int]:
    """Introspection for tests and the telemetry gauge."""
    return {"entries": len(_TABLE_CACHE), "max_entries": MAX_CACHED_TABLES}


def clear_dlog_cache() -> None:
    """Drop all cached baby-step tables (used by memory-sensitive tests)."""
    _TABLE_CACHE.clear()
    if _METRICS.cache is not None:
        _METRICS.cache.set(0)
