"""Bounded discrete logarithm via baby-step/giant-step.

"Because encryption is at the exponent, recovering the original
plaintext requires computing the discrete logarithm … this operation is
feasible if the range of admissible cleartexts is small" (App. 10.4).
Profile coordinates, squared distances, and cluster sums are all small
bounded integers, so BSGS with a per-(group, bound) cached baby-step
table makes decryption cheap.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.crypto.group import SchnorrGroup


class DiscreteLogError(ValueError):
    """The element has no discrete log within the stated bound."""


#: (p, g, m) → baby-step table {g^j mod p: j}
_TABLE_CACHE: Dict[Tuple[int, int, int], Dict[int, int]] = {}


def _baby_table(group: SchnorrGroup, m: int) -> Dict[int, int]:
    key = (group.p, group.g, m)
    table = _TABLE_CACHE.get(key)
    if table is None:
        table = {}
        value = 1
        for j in range(m):
            table.setdefault(value, j)
            value = group.mul(value, group.g)
        _TABLE_CACHE[key] = table
    return table


def discrete_log(group: SchnorrGroup, element: int, bound: int) -> int:
    """Find x in [0, bound] with g^x ≡ element (mod p).

    Raises :class:`DiscreteLogError` when no such x exists — which, in
    the protocols, signals either a corrupted ciphertext or a plaintext
    outside the agreed range.
    """
    if bound < 0:
        raise ValueError("bound must be non-negative")
    m = max(1, math.isqrt(bound) + 1)
    table = _baby_table(group, m)
    # giant step: multiply by g^{-m} up to ceil((bound+1)/m) times
    giant = group.inv(group.gexp(m))
    gamma = element % group.p
    steps = bound // m + 1
    for i in range(steps + 1):
        j = table.get(gamma)
        if j is not None:
            x = i * m + j
            if x <= bound:
                return x
        gamma = group.mul(gamma, giant)
    raise DiscreteLogError(f"no discrete log within bound {bound}")


def clear_dlog_cache() -> None:
    """Drop all cached baby-step tables (used by memory-sensitive tests)."""
    _TABLE_CACHE.clear()
