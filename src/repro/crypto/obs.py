"""Telemetry bindings for the crypto layer (``sheriff_crypto_*``).

The crypto modules keep module-level instrument slots that default to
``None`` (the same null-twin discipline as the rest of the system:
unbound means zero-cost, and instruments never perturb determinism).
:func:`bind_crypto_telemetry` declares the instruments on a deployment's
registry and hands them to :mod:`repro.crypto.fastexp` and
:mod:`repro.crypto.dlog`; the per-phase latency histogram lives on the
protocol parties themselves (``KMeansCoordinator.bind_telemetry`` /
``KMeansAggregator.bind_telemetry``).

Caveat for ``n_workers > 1``: forked pool workers inherit the bound
instruments but increment their own copies — the parent's counters see
only parent-side work.  Phase histograms are recorded parent-side and
therefore always complete.
"""

from __future__ import annotations

from repro.crypto import dlog, fastexp


def bind_crypto_telemetry(telemetry) -> None:
    """Register the ``sheriff_crypto_*`` instruments and attach them."""
    registry = telemetry.registry
    fastexp.bind_instruments(
        pows=registry.counter(
            "sheriff_crypto_fastexp_pows_total",
            "Exponentiations served by fixed-base comb tables",
        ),
        builds=registry.counter(
            "sheriff_crypto_fastexp_table_builds_total",
            "Comb table precomputations (fixed-base and ephemeral)",
        ),
        tables=registry.gauge(
            "sheriff_crypto_fastexp_tables",
            "Fixed-base comb tables currently in the LRU cache",
        ),
        batch_inversions=registry.counter(
            "sheriff_crypto_batch_inversions_total",
            "Montgomery batch-inversion passes",
        ),
    )
    dlog.bind_instruments(
        cache=registry.gauge(
            "sheriff_crypto_dlog_cache",
            "Baby-step tables currently in the BSGS LRU cache",
        ),
        calls=registry.counter(
            "sheriff_crypto_dlog_calls_total",
            "Bounded discrete-log computations",
        ),
        evictions=registry.counter(
            "sheriff_crypto_dlog_cache_evictions_total",
            "Baby-step tables evicted by the LRU size cap",
        ),
    )


def unbind_crypto_telemetry() -> None:
    """Detach all crypto instruments (tests and benchmark hygiene)."""
    fastexp.bind_instruments()
    dlog.bind_instruments()
