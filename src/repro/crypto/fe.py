"""Inner-product functional encryption (Abdalla et al. [13]).

"The holder of the private keys can compute and outsource the function
key f = Σ x_i s_i for a (private) vector s.  Given an encryption of c
… the holder of the function key can evaluate the dot-product between c
and s by computing γ = Π β_i^{s_i} / α^f and then finding the discrete
logarithm of γ" (App. 10.4).

Negative coordinates in ``s`` (the distance protocol uses −2·b_i) are
handled by reduction modulo the group order.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.dlog import discrete_log
from repro.crypto.elgamal import Ciphertext
from repro.crypto.group import SchnorrGroup


class InnerProductFE:
    """Derive function keys and evaluate dot products on ciphertexts."""

    def __init__(self, group: SchnorrGroup) -> None:
        self.group = group

    def function_key(self, secret: Sequence[int], s: Sequence[int]) -> int:
        """f = Σ x_i · s_i (mod q) — derived by the key holder."""
        if len(secret) != len(s):
            raise ValueError("key / function vector dimension mismatch")
        return sum(x * si for x, si in zip(secret, s)) % self.group.q

    def eval_element(self, ct: Ciphertext, s: Sequence[int], f: int) -> int:
        """γ = Π β_i^{s_i} / α^f, i.e. g^{⟨c, s⟩} as a group element."""
        if len(s) != ct.dimensions:
            raise ValueError("function vector / ciphertext dimension mismatch")
        numerator = 1
        for beta, si in zip(ct.betas, s):
            numerator = self.group.mul(numerator, self.group.exp(beta, si))
        return self.group.div(numerator, self.group.exp(ct.alpha, f))

    def eval_dot_product(
        self, ct: Ciphertext, s: Sequence[int], f: int, bound: int
    ) -> int:
        """Recover ⟨c, s⟩ ∈ [0, bound] from the ciphertext."""
        return discrete_log(self.group, self.eval_element(ct, s, f), bound)
