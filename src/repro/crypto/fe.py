"""Inner-product functional encryption (Abdalla et al. [13]).

"The holder of the private keys can compute and outsource the function
key f = Σ x_i s_i for a (private) vector s.  Given an encryption of c
… the holder of the function key can evaluate the dot-product between c
and s by computing γ = Π β_i^{s_i} / α^f and then finding the discrete
logarithm of γ" (App. 10.4).

Negative coordinates in ``s`` (the distance protocol uses −2·b_i) are
handled by reduction modulo the group order — which is exactly what
makes the textbook evaluation slow: ``β^{-2b mod q}`` is a full-width
exponentiation even though ``b`` is a tiny centroid coordinate.  The
fast path (default) splits ``s`` by sign and computes
``γ = (Π_{s_i>0} β_i^{s_i}) / (Π_{s_i<0} β_i^{-s_i} · α^f)`` instead:
every β-exponent stays as small as the protocol data it encodes, and
the whole denominator costs one inversion.  When one ciphertext is
evaluated against many function vectors (:meth:`eval_elements` — the
distance phase scores every centroid against the same masked client),
the shared base α gets an ephemeral comb table and the per-vector
denominators are inverted together with one Montgomery batch pass.

``use_fastexp=False`` restores the verbatim textbook evaluation; both
paths return identical group elements.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto import fastexp
from repro.crypto.dlog import discrete_log
from repro.crypto.elgamal import Ciphertext
from repro.crypto.group import SchnorrGroup


class InnerProductFE:
    """Derive function keys and evaluate dot products on ciphertexts."""

    def __init__(self, group: SchnorrGroup, use_fastexp: bool = True) -> None:
        self.group = group
        self.use_fastexp = use_fastexp

    def function_key(self, secret: Sequence[int], s: Sequence[int]) -> int:
        """f = Σ x_i · s_i (mod q) — derived by the key holder."""
        if len(secret) != len(s):
            raise ValueError("key / function vector dimension mismatch")
        return sum(x * si for x, si in zip(secret, s)) % self.group.q

    # -- evaluation -----------------------------------------------------------
    def _eval_naive(self, ct: Ciphertext, s: Sequence[int], f: int) -> int:
        numerator = 1
        for beta, si in zip(ct.betas, s):
            numerator = self.group.mul(numerator, self.group.exp(beta, si))
        return self.group.div(numerator, self.group.exp(ct.alpha, f))

    def _split_products(self, ct: Ciphertext, s: Sequence[int]) -> tuple:
        """(Π_{s_i>0} β_i^{s_i}, Π_{s_i<0} β_i^{-s_i}) with small exponents."""
        p = self.group.p
        num = 1
        den = 1
        for beta, si in zip(ct.betas, s):
            if si == 0:
                continue
            if si == 1:
                num = num * beta % p
            elif si > 0:
                num = num * pow(beta, si, p) % p
            elif si == -1:
                den = den * beta % p
            else:
                den = den * pow(beta, -si, p) % p
        return num, den

    def eval_element(self, ct: Ciphertext, s: Sequence[int], f: int) -> int:
        """γ = Π β_i^{s_i} / α^f, i.e. g^{⟨c, s⟩} as a group element."""
        if len(s) != ct.dimensions:
            raise ValueError("function vector / ciphertext dimension mismatch")
        if not self.use_fastexp:
            return self._eval_naive(ct, s, f)
        group = self.group
        num, den = self._split_products(ct, s)
        den = den * pow(ct.alpha, f % group.q, group.p) % group.p
        return group.div(num, den)

    def eval_elements(
        self,
        ct: Ciphertext,
        s_vectors: Sequence[Sequence[int]],
        f_keys: Sequence[int],
    ) -> List[int]:
        """Evaluate one ciphertext against many (s, f) pairs at once.

        The distance phase scores every centroid against the same
        masked client ciphertext, so α is a shared base: it gets one
        ephemeral comb table amortized over all ``len(f_keys)``
        exponentiations, and the per-centroid denominators are unmasked
        with a single Montgomery batch inversion.
        """
        if len(s_vectors) != len(f_keys):
            raise ValueError("function vector / key count mismatch")
        if not self.use_fastexp:
            return [
                self._eval_naive(ct, s, f) for s, f in zip(s_vectors, f_keys)
            ]
        group = self.group
        p = group.p
        atab = fastexp.ephemeral_table(p, group.q, ct.alpha, len(f_keys))
        nums = []
        dens = []
        for s, f in zip(s_vectors, f_keys):
            if len(s) != ct.dimensions:
                raise ValueError("function vector / ciphertext dimension mismatch")
            num, den = self._split_products(ct, s)
            nums.append(num)
            dens.append(den * atab.pow(f) % p)
        inverses = fastexp.batch_invert(p, dens)
        return [num * inv % p for num, inv in zip(nums, inverses)]

    def eval_dot_product(
        self, ct: Ciphertext, s: Sequence[int], f: int, bound: int
    ) -> int:
        """Recover ⟨c, s⟩ ∈ [0, bound] from the ciphertext."""
        return discrete_log(self.group, self.eval_element(ct, s, f), bound)
