"""Fast modular exponentiation for the secure k-means hot path.

The protocol of Sect. 3.8 / App. 10.4 spends essentially all of its
time computing ``base^e mod p`` for a handful of *fixed* bases: the
group generator ``g`` (every encryption, every mask, every unmask) and
the Coordinator's public keys ``h_i`` (one per vector component, reused
by every client).  CPython's built-in three-argument ``pow`` re-derives
everything from scratch on each call — at RFC-3526 2048-bit parameters
that is ~35 ms per exponentiation, and even at the 64-bit test group the
interpreter overhead alone is ~20 µs.

Two classic techniques cut this down:

* **fixed-base comb tables** (:class:`FixedBaseTable`) — precompute
  ``base^(d · 2^{w·j})`` for every window position ``j`` and digit
  ``d < 2^w``; an exponentiation then costs one table lookup and one
  modular multiplication per non-zero window (⌈|q|/w⌉ of them) instead
  of |q| squarings plus multiplications.  Measured speedup vs built-in
  ``pow``: ~5x at 64-bit (w=8) and ~4.5x at 2048-bit (w=4), before any
  reuse of the table build.
* **Montgomery batch inversion** (:func:`batch_invert`) — n modular
  inverses for the price of one inversion plus 3(n−1) multiplications.
  A single inversion is as expensive as a full exponentiation
  (``pow(a, p-2, p)``), so unmasking a whole client batch this way is
  a large constant-factor win.

Tables for truly fixed bases (``g``, the ``h_i``) live in a module-level
LRU cache (:func:`fixed_base`) so that (a) every scheme object sharing a
group shares tables and (b) worker processes forked *after* the tables
are built inherit them copy-on-write, paying the build cost once per
protocol run rather than once per worker per call.  Per-ciphertext bases
(a masked ``α`` evaluated against many centroids) use cheaper
*ephemeral* tables via :func:`ephemeral_table`, which falls back to
built-in ``pow`` when too few exponentiations are expected to amortize
the build.

Everything here is bit-compatible with the naive path: for any base and
exponent, ``FixedBaseTable.pow(e) == pow(base, e % q, p)``.  The
``use_fastexp=False`` escape hatch on the schemes above this layer
switches back to raw ``pow`` wholesale.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

__all__ = [
    "FixedBaseTable",
    "batch_invert",
    "clear_fastexp_cache",
    "ephemeral_table",
    "fastexp_cache_info",
    "fixed_base",
]

#: fixed-base tables cached per (modulus, base); LRU-bounded because
#: public keys are per-protocol-run ephemera and would otherwise leak
MAX_CACHED_TABLES = 256

#: below this many expected uses an ephemeral table costs more to build
#: than it saves (break-even is ~2 uses at 64-bit, ~4 at 2048-bit)
EPHEMERAL_MIN_USES = 5


class _Metrics:
    """Module-level instrument slots, ``None`` until telemetry binds."""

    __slots__ = ("pows", "builds", "tables", "batch_inversions")

    def __init__(self) -> None:
        self.pows = None
        self.builds = None
        self.tables = None
        self.batch_inversions = None


_METRICS = _Metrics()


def bind_instruments(pows=None, builds=None, tables=None, batch_inversions=None) -> None:
    """Attach ``sheriff_crypto_fastexp_*`` instruments (see crypto.obs)."""
    _METRICS.pows = pows
    _METRICS.builds = builds
    _METRICS.tables = tables
    _METRICS.batch_inversions = batch_inversions
    if tables is not None:
        tables.set(len(_TABLE_CACHE))


def _default_window(qbits: int) -> int:
    """Window width balancing table size against per-pow multiplications.

    Wider windows mean fewer multiplications per exponentiation but a
    2^w-per-window build cost and memory footprint; the sweet spots were
    measured on CPython 3.11 (see module docstring).
    """
    if qbits <= 128:
        return 8
    if qbits <= 512:
        return 6
    return 4


class FixedBaseTable:
    """Windowed comb precomputation for one ``(base, p, q)`` triple.

    ``rows[j][d] == base^(d · 2^{w·j}) mod p`` for window index ``j`` and
    digit ``d``.  :meth:`pow` walks the exponent's base-2^w digits and
    multiplies the matching entries — no squarings at all, and small
    exponents touch only their few low windows.
    """

    __slots__ = ("p", "q", "base", "window", "rows")

    def __init__(self, p: int, q: int, base: int, window: Optional[int] = None) -> None:
        self.p = p
        self.q = q
        self.base = base % p
        self.window = window if window is not None else _default_window(q.bit_length())
        w = self.window
        n_windows = (q.bit_length() + w - 1) // w
        rows: List[List[int]] = []
        b_j = self.base  # base^(2^{w·j}), advanced as rows are built
        for _ in range(n_windows):
            row = [1] * (1 << w)
            acc = 1
            for d in range(1, 1 << w):
                acc = acc * b_j % p
                row[d] = acc
            rows.append(row)
            b_j = row[-1] * b_j % p  # b_j^(2^w - 1) · b_j = b_j^(2^w)
        self.rows = rows
        if _METRICS.builds is not None:
            _METRICS.builds.inc()

    @property
    def n_windows(self) -> int:
        return len(self.rows)

    def pow(self, exponent: int) -> int:
        """``base^exponent mod p`` with the exponent reduced mod q."""
        e = exponent % self.q
        p = self.p
        rows = self.rows
        mask = (1 << self.window) - 1
        w = self.window
        result = 1
        j = 0
        while e:
            d = e & mask
            if d:
                result = result * rows[j][d] % p
            e >>= w
            j += 1
        if _METRICS.pows is not None:
            _METRICS.pows.inc()
        return result


#: (p, base) → FixedBaseTable, most-recently-used last
_TABLE_CACHE: "OrderedDict[Tuple[int, int], FixedBaseTable]" = OrderedDict()


def fixed_base(p: int, q: int, base: int) -> FixedBaseTable:
    """The shared, LRU-cached table for a long-lived base (g, h_i)."""
    key = (p, base % p)
    table = _TABLE_CACHE.get(key)
    if table is not None:
        _TABLE_CACHE.move_to_end(key)
        return table
    table = FixedBaseTable(p, q, base)
    _TABLE_CACHE[key] = table
    while len(_TABLE_CACHE) > MAX_CACHED_TABLES:
        _TABLE_CACHE.popitem(last=False)
    if _METRICS.tables is not None:
        _METRICS.tables.set(len(_TABLE_CACHE))
    return table


def cached_table(p: int, base: int) -> Optional[FixedBaseTable]:
    """Peek: the cached table for ``base`` if one exists, else ``None``.

    Lets cold paths (a lone discrete log) avoid paying a table build
    they would never amortize, while hot paths that already built the
    table get the fast route for free.
    """
    table = _TABLE_CACHE.get((p, base % p))
    if table is not None:
        _TABLE_CACHE.move_to_end((p, base % p))
    return table


class _PowProxy:
    """Built-in ``pow`` behind the :class:`FixedBaseTable` interface."""

    __slots__ = ("p", "q", "base")

    def __init__(self, p: int, q: int, base: int) -> None:
        self.p = p
        self.q = q
        self.base = base % p

    def pow(self, exponent: int) -> int:
        return pow(self.base, exponent % self.q, self.p)


def ephemeral_table(p: int, q: int, base: int, expected_uses: int):
    """A throwaway exponentiation handle for a per-ciphertext base.

    Builds a narrow (w=4) comb table when ``expected_uses`` will
    amortize it, otherwise returns a thin built-in-``pow`` proxy.  Never
    touches the module cache.
    """
    if expected_uses >= EPHEMERAL_MIN_USES:
        return FixedBaseTable(p, q, base, window=4)
    return _PowProxy(p, q, base)


def batch_invert(p: int, values: Sequence[int]) -> List[int]:
    """Montgomery's trick: invert every value mod p with one inversion.

    Computes prefix products left-to-right, inverts the grand total
    once (``pow(·, p-2, p)``), then peels inverses off right-to-left.
    3(n−1) multiplications + 1 inversion instead of n inversions.
    """
    n = len(values)
    if n == 0:
        return []
    prefix = [1] * n
    acc = 1
    for i, v in enumerate(values):
        v %= p
        if v == 0:
            raise ZeroDivisionError("cannot invert 0 mod p")
        prefix[i] = acc
        acc = acc * v % p
    inv_acc = pow(acc, p - 2, p)
    out = [0] * n
    for i in range(n - 1, -1, -1):
        out[i] = prefix[i] * inv_acc % p
        inv_acc = inv_acc * (values[i] % p) % p
    if _METRICS.batch_inversions is not None:
        _METRICS.batch_inversions.inc()
    return out


def fastexp_cache_info() -> Dict[str, int]:
    """Introspection for tests and the telemetry gauge."""
    return {
        "entries": len(_TABLE_CACHE),
        "max_entries": MAX_CACHED_TABLES,
        "windows": sum(t.n_windows for t in _TABLE_CACHE.values()),
    }


def clear_fastexp_cache() -> None:
    """Drop all cached fixed-base tables (memory-sensitive tests)."""
    _TABLE_CACHE.clear()
    if _METRICS.tables is not None:
        _METRICS.tables.set(0)
