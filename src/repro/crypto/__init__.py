"""Cryptography for the privacy-preserving k-means (Sect. 3.8, App. 10.4).

Implements, from scratch:

* :mod:`repro.crypto.group` — Schnorr groups (prime-order subgroups of
  Z_p* with p a safe prime) where DDH is assumed hard;
* :mod:`repro.crypto.dlog` — baby-step/giant-step discrete logarithm for
  bounded exponents (messages are encrypted "at the exponent", so
  decryption needs a small-range DL);
* :mod:`repro.crypto.elgamal` — the additively homomorphic, vector-key
  variant of ElGamal the paper builds on;
* :mod:`repro.crypto.fe` — the inner-product functional encryption of
  Abdalla et al. [13] (function keys for dot products);
* :mod:`repro.crypto.fastexp` — fixed-base comb-table exponentiation
  and Montgomery batch inversion, the fast path under everything above
  (``use_fastexp=False`` on the schemes restores the naive arithmetic,
  bit-identically);
* :mod:`repro.crypto.secure_kmeans` — the Coordinator/Aggregator
  two-phase clustering protocol with additive masking, so the
  Coordinator learns only centroids and cluster cardinalities while the
  Aggregator learns only the client→cluster mapping and distances;
* :mod:`repro.crypto.obs` — ``sheriff_crypto_*`` telemetry bindings.
"""

from repro.crypto.group import (
    BENCH_GROUP_256,
    RFC3526_GROUP_2048,
    SchnorrGroup,
    TEST_GROUP,
)
from repro.crypto.fastexp import (
    FixedBaseTable,
    batch_invert,
    clear_fastexp_cache,
    fastexp_cache_info,
)
from repro.crypto.dlog import (
    DiscreteLogError,
    clear_dlog_cache,
    discrete_log,
    dlog_cache_info,
)
from repro.crypto.elgamal import Ciphertext, VectorElGamal
from repro.crypto.fe import InnerProductFE
from repro.crypto.obs import bind_crypto_telemetry, unbind_crypto_telemetry
from repro.crypto.secure_kmeans import (
    KMeansAggregator,
    KMeansCoordinator,
    ProfileClient,
    SecureKMeansResult,
    WorkerPool,
    run_secure_kmeans,
)

__all__ = [
    "BENCH_GROUP_256",
    "SchnorrGroup",
    "TEST_GROUP",
    "RFC3526_GROUP_2048",
    "DiscreteLogError",
    "discrete_log",
    "clear_dlog_cache",
    "dlog_cache_info",
    "FixedBaseTable",
    "batch_invert",
    "clear_fastexp_cache",
    "fastexp_cache_info",
    "Ciphertext",
    "VectorElGamal",
    "InnerProductFE",
    "KMeansAggregator",
    "KMeansCoordinator",
    "ProfileClient",
    "SecureKMeansResult",
    "WorkerPool",
    "bind_crypto_telemetry",
    "run_secure_kmeans",
    "unbind_crypto_telemetry",
]
