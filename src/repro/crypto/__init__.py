"""Cryptography for the privacy-preserving k-means (Sect. 3.8, App. 10.4).

Implements, from scratch:

* :mod:`repro.crypto.group` — Schnorr groups (prime-order subgroups of
  Z_p* with p a safe prime) where DDH is assumed hard;
* :mod:`repro.crypto.dlog` — baby-step/giant-step discrete logarithm for
  bounded exponents (messages are encrypted "at the exponent", so
  decryption needs a small-range DL);
* :mod:`repro.crypto.elgamal` — the additively homomorphic, vector-key
  variant of ElGamal the paper builds on;
* :mod:`repro.crypto.fe` — the inner-product functional encryption of
  Abdalla et al. [13] (function keys for dot products);
* :mod:`repro.crypto.secure_kmeans` — the Coordinator/Aggregator
  two-phase clustering protocol with additive masking, so the
  Coordinator learns only centroids and cluster cardinalities while the
  Aggregator learns only the client→cluster mapping and distances.
"""

from repro.crypto.group import SchnorrGroup, TEST_GROUP, RFC3526_GROUP_2048
from repro.crypto.dlog import DiscreteLogError, discrete_log
from repro.crypto.elgamal import Ciphertext, VectorElGamal
from repro.crypto.fe import InnerProductFE
from repro.crypto.secure_kmeans import (
    KMeansAggregator,
    KMeansCoordinator,
    ProfileClient,
    SecureKMeansResult,
    run_secure_kmeans,
)

__all__ = [
    "SchnorrGroup",
    "TEST_GROUP",
    "RFC3526_GROUP_2048",
    "DiscreteLogError",
    "discrete_log",
    "Ciphertext",
    "VectorElGamal",
    "InnerProductFE",
    "KMeansAggregator",
    "KMeansCoordinator",
    "ProfileClient",
    "SecureKMeansResult",
    "run_secure_kmeans",
]
