"""Privacy-preserving k-means between the Coordinator and the Aggregator.

Protocol of Sect. 3.8 / App. 10.4.  Roles and what each one learns:

* **ProfileClient** — owns a private browsing-profile point
  ``a = (a_1 … a_m)`` with integer coordinates in ``[0, Q]``.  It encrypts
  ``c = (Σ a_i², 1, a_1, …, a_m)`` under the Coordinator's public keys,
  hands the ciphertext to the Aggregator, and goes offline.
* **KMeansCoordinator** — holds the ``t = m + 2`` ElGamal secret keys and
  the cluster centroids.  It learns the centroids (that is the point:
  they become the doppelganger profiles) and the cluster cardinalities,
  but never a client point nor the client→cluster mapping.
* **KMeansAggregator** — holds the encrypted client points.  It learns
  the squared distance between every client and every centroid (hence
  the mapping) but neither the points nor the centroids.

**Distance phase** (Fig. 17).  For centroid ``b`` the Coordinator's
private function vector is ``s = (1, Σ b_i², −2·b_1, …, −2·b_m)`` so that
``⟨c, s⟩ = Σa² + Σb² − 2Σab = d²(a, b)``.  To keep the Coordinator from
learning ``d²``, the Aggregator first re-randomizes the ciphertext and
homomorphically adds a random mask ν to the *first* coordinate; since
``s_1 = 1`` for every centroid, the Coordinator's evaluation returns
``g^{d² + ν}``, which only the Aggregator can unmask and discrete-log.

**Centroid-update phase** (Fig. 18).  The Aggregator multiplies the
ciphertexts of a cluster's members component-wise over positions
``[3, t]`` (the raw coordinates) and forwards the aggregate plus the
cardinality; the Coordinator decrypts the dimension-wise sums, divides
by the cardinality, and re-quantizes to integers.

Halting: iteration stops when the fraction of clients whose cluster
changed falls below ``halt_threshold`` (observed by the Aggregator), or
after ``max_iterations``.

The heavy group arithmetic is parallelizable (Fig. 8(c) compares 1 vs 4
workers); ``n_workers > 1`` fans the per-client work out to worker
*processes* — each inside the boundary of the party doing the work, so
parallelism never moves private data across roles.  Each party owns a
persistent, lazily-started fork pool (:class:`WorkerPool`): workers are
forked once, inherit the fixed-base exponentiation tables and BSGS
contexts copy-on-write, and survive across phases and iterations, so a
multi-iteration run no longer pays pool startup per phase per iteration.
Both parties are context managers; ``close()`` (or ``with``) shuts the
pools down deterministically.

Fast-path crypto (default; ``use_fastexp=False`` restores the naive
textbook arithmetic, bit-for-bit and RNG-draw-for-draw identical):

* all fixed-base exponentiations route through comb tables
  (:mod:`repro.crypto.fastexp`);
* the mask is a cheap re-randomization — ``α·g^r``, ``β_i·h_i^r``,
  ``β_1·g^ν`` — instead of a full encryption of a mostly-zero vector;
* the per-client ``g^ν`` unmask factors are inverted together with one
  Montgomery batch inversion instead of one ``pow(·, p-2, p)`` each.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto import dlog as _dlog
from repro.crypto import fastexp
from repro.crypto.dlog import discrete_log
from repro.crypto.elgamal import Ciphertext, VectorElGamal
from repro.crypto.fe import InnerProductFE
from repro.crypto.group import SchnorrGroup, TEST_GROUP


def profile_to_plaintext(point: Sequence[int]) -> List[int]:
    """Build the encoded vector c = (Σ a_i², 1, a_1, …, a_m)."""
    return [sum(a * a for a in point), 1, *point]


def centroid_function_vector(centroid: Sequence[int]) -> List[int]:
    """Build the function vector s = (1, Σ b_i², −2 b_1, …, −2 b_m)."""
    return [1, sum(b * b for b in centroid), *(-2 * b for b in centroid)]


class WorkerPool:
    """A persistent, lazily-started fork pool owned by one party.

    The previous implementation spawned a fresh ``multiprocessing.Pool``
    inside every parallel phase — twice per k-means iteration — so
    multi-iteration runs spent a fixed fork+teardown tax per phase.
    This pool forks its workers on first use and keeps them until
    :meth:`close`; because the start method is ``fork``, workers inherit
    every fixed-base comb table and BSGS baby-step table the parent
    built before that first use, copy-on-write and for free.
    """

    def __init__(self, n_workers: int) -> None:
        self.n_workers = n_workers
        self._pool = None

    @property
    def started(self) -> bool:
        return self._pool is not None

    def map(self, fn, args: Sequence) -> list:
        if self._pool is None:
            self._pool = multiprocessing.get_context("fork").Pool(self.n_workers)
        return self._pool.map(fn, args)

    def close(self) -> None:
        """Shut the workers down and reap them (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProfileClient:
    """A PPC that contributes its encrypted browsing profile."""

    def __init__(self, client_id: str, point: Sequence[int], value_bound: int) -> None:
        if any(a < 0 or a > value_bound for a in point):
            raise ValueError(f"profile coordinates must lie in [0, {value_bound}]")
        self.client_id = client_id
        self._point = list(point)
        self.value_bound = value_bound

    @property
    def dimensions(self) -> int:
        return len(self._point)

    def encrypt_profile(
        self,
        scheme: VectorElGamal,
        public_keys: Sequence[int],
        rng: random.Random,
    ) -> Ciphertext:
        """Encrypt and hand over; after this the client can go offline."""
        return scheme.encrypt(public_keys, profile_to_plaintext(self._point), rng)


class KMeansCoordinator:
    """Key holder; learns centroids and cardinalities only."""

    def __init__(
        self,
        group: SchnorrGroup,
        m: int,
        value_bound: int,
        rng: random.Random,
        n_workers: int = 1,
        use_fastexp: bool = True,
    ) -> None:
        self.group = group
        self.m = m
        self.t = m + 2
        self.value_bound = value_bound
        self.n_workers = n_workers
        self.use_fastexp = use_fastexp
        self.scheme = VectorElGamal(group, self.t, use_fastexp=use_fastexp)
        self._secret, self.public_keys = self.scheme.keygen(rng)
        self._fe = InnerProductFE(group, use_fastexp=use_fastexp)
        self.centroids: List[List[int]] = []
        self.pool = WorkerPool(n_workers)
        self._m_phase = None

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Release the persistent worker pool."""
        self.pool.close()

    def __enter__(self) -> "KMeansCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def bind_telemetry(self, telemetry) -> None:
        """Attach the deployment's telemetry plane (phase latencies)."""
        self._m_phase = _phase_histogram(telemetry.registry)

    def _observe_phase(self, phase: str, seconds: float) -> None:
        if self._m_phase is not None:
            self._m_phase.observe(seconds, phase=phase)

    # -- centroid state -----------------------------------------------------
    def set_centroids(self, centroids: Sequence[Sequence[int]]) -> None:
        for c in centroids:
            if len(c) != self.m:
                raise ValueError("centroid dimensionality mismatch")
        self.centroids = [list(c) for c in centroids]

    @property
    def k(self) -> int:
        return len(self.centroids)

    def _function_data(self) -> Tuple[List[List[int]], List[int]]:
        s_vectors = [centroid_function_vector(b) for b in self.centroids]
        f_keys = [self._fe.function_key(self._secret, s) for s in s_vectors]
        return s_vectors, f_keys

    # -- distance phase (Coordinator side) -------------------------------
    def distance_elements_batch(
        self, masked: Sequence[Tuple[int, int, Tuple[int, ...]]]
    ) -> Dict[int, List[int]]:
        """For each masked ciphertext, return γ_k = g^{d²_k + ν} per centroid.

        ``masked`` is a list of (client_index, α, βs).  The Coordinator
        sees only masked ciphertexts, so the returned elements reveal
        nothing to it.
        """
        started = time.perf_counter()
        s_vectors, f_keys = self._function_data()
        if self.n_workers <= 1 or len(masked) < 2:
            out = dict(
                _distance_chunk(
                    (self.group.p, self.group.q, self.group.g,
                     s_vectors, f_keys, list(masked), self.use_fastexp)
                )
            )
            self._observe_phase("distance", time.perf_counter() - started)
            return out
        chunks = _split(list(masked), self.n_workers)
        args = [
            (self.group.p, self.group.q, self.group.g,
             s_vectors, f_keys, chunk, self.use_fastexp)
            for chunk in chunks
            if chunk
        ]
        out: Dict[int, List[int]] = {}
        for partial in self.pool.map(_distance_chunk, args):
            out.update(partial)
        self._observe_phase("distance", time.perf_counter() - started)
        return out

    # -- update phase (Coordinator side) -----------------------------------
    def update_centroid(
        self, cluster_index: int, aggregate: Ciphertext, cardinality: int
    ) -> List[int]:
        """Decrypt the aggregated sums, average, re-quantize, store."""
        if cardinality <= 0:
            return self.centroids[cluster_index]  # empty cluster: keep it
        started = time.perf_counter()
        bound = cardinality * self.value_bound
        sums = self.scheme.decrypt_components(
            self._secret, aggregate, range(2, self.t), bound
        )
        centroid = [int(round(s / cardinality)) for s in sums]
        self.centroids[cluster_index] = centroid
        self._observe_phase("update", time.perf_counter() - started)
        return centroid


class KMeansAggregator:
    """Holds encrypted points; learns distances and the mapping only."""

    def __init__(
        self,
        group: SchnorrGroup,
        coordinator: KMeansCoordinator,
        rng: random.Random,
        n_workers: int = 1,
        use_fastexp: bool = True,
    ) -> None:
        self.group = group
        self.coordinator = coordinator
        self._rng = rng
        self.n_workers = n_workers
        self.use_fastexp = use_fastexp
        self.scheme = VectorElGamal(group, coordinator.t, use_fastexp=use_fastexp)
        self._ciphertexts: Dict[str, Ciphertext] = {}
        self._order: List[str] = []
        self.assignments: Dict[str, int] = {}
        self.pool = WorkerPool(n_workers)
        self._m_phase = None

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Release the persistent worker pool."""
        self.pool.close()

    def __enter__(self) -> "KMeansAggregator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def bind_telemetry(self, telemetry) -> None:
        """Attach the deployment's telemetry plane (phase latencies)."""
        self._m_phase = _phase_histogram(telemetry.registry)

    def _observe_phase(self, phase: str, seconds: float) -> None:
        if self._m_phase is not None:
            self._m_phase.observe(seconds, phase=phase)

    # -- intake ---------------------------------------------------------------
    def submit(self, client_id: str, ciphertext: Ciphertext) -> None:
        if ciphertext.dimensions != self.coordinator.t:
            raise ValueError("ciphertext dimensionality mismatch")
        if client_id not in self._ciphertexts:
            self._order.append(client_id)
        self._ciphertexts[client_id] = ciphertext

    @property
    def n_clients(self) -> int:
        return len(self._ciphertexts)

    # -- distance phase (Aggregator side) -------------------------------------
    def _mask(self, ct: Ciphertext) -> Tuple[Ciphertext, int]:
        """Re-randomize and add ν to coordinate 1; returns (masked, ν).

        Fast path: multiply the re-randomization straight into the
        ciphertext (``α·g^r``, ``β_i·h_i^r``, ``β_1·g^ν``) through the
        fixed-base tables — 1 + t table exponentiations instead of the
        naive path's full encryption of a mostly-zero mask vector
        (1 + 2t raw ones).  Identical output, identical RNG draws
        (ν then r) either way.
        """
        nu = self.group.random_exponent(self._rng)
        public = self.coordinator.public_keys
        if self.use_fastexp:
            masked = self.scheme.rerandomize(
                public, ct, self._rng, add_at={0: nu}
            )
            return masked, nu
        mask_plain = [nu] + [0] * (self.coordinator.t - 1)
        mask_ct = self.scheme.encrypt(public, mask_plain, self._rng)
        return self.scheme.add(ct, mask_ct), nu

    def mask_all(self) -> Tuple[List[Tuple[int, int, Tuple[int, ...]]], List[int]]:
        """Mask every held ciphertext; returns (masked batch, ν list)."""
        started = time.perf_counter()
        masked_batch: List[Tuple[int, int, Tuple[int, ...]]] = []
        nus: List[int] = []
        for idx, client_id in enumerate(self._order):
            masked, nu = self._mask(self._ciphertexts[client_id])
            masked_batch.append((idx, masked.alpha, masked.betas))
            nus.append(nu)
        self._observe_phase("mask", time.perf_counter() - started)
        return masked_batch, nus

    def _unmask_factors(self, nus: Sequence[int]) -> List[int]:
        """The per-client g^{-ν} factors, batch-inverted on the fast path."""
        if self.use_fastexp:
            g_nus = [self.scheme.gexp(nu) for nu in nus]
            return fastexp.batch_invert(self.group.p, g_nus)
        return [self.group.inv(self.group.gexp(nu)) for nu in nus]

    def choose_clusters(
        self, gamma_map: Dict[int, List[int]], nus: Sequence[int]
    ) -> Tuple[Dict[str, int], int]:
        """Unmask the γs, discrete-log, pick each client's nearest centroid."""
        started = time.perf_counter()
        m = self.coordinator.m
        bound = m * self.coordinator.value_bound ** 2
        unmask_factors = self._unmask_factors(nus)
        unmask_items = [
            (idx, unmask_factors[idx], gamma_map[idx])
            for idx in range(len(self._order))
        ]
        if self.n_workers <= 1 or len(unmask_items) < 2:
            results = _unmask_chunk(
                (self.group.p, self.group.q, self.group.g, bound, unmask_items)
            )
        else:
            # build the BSGS context in the parent before the workers
            # fork so every worker inherits it copy-on-write
            if not self.pool.started:
                _dlog.prewarm(self.group, bound)
            chunks = _split(unmask_items, self.n_workers)
            args = [
                (self.group.p, self.group.q, self.group.g, bound, chunk)
                for chunk in chunks
                if chunk
            ]
            results = []
            for partial in self.pool.map(_unmask_chunk, args):
                results.extend(partial)

        changed = 0
        new_assignments: Dict[str, int] = {}
        for idx, cluster in results:
            client_id = self._order[idx]
            new_assignments[client_id] = cluster
            if self.assignments.get(client_id) != cluster:
                changed += 1
        self.assignments = new_assignments
        self._observe_phase("unmask", time.perf_counter() - started)
        return dict(new_assignments), changed

    def assign_all(self) -> Tuple[Dict[str, int], int]:
        """One client→cluster mapping pass; returns (mapping, n_changed)."""
        masked_batch, nus = self.mask_all()
        gamma_map = self.coordinator.distance_elements_batch(masked_batch)
        return self.choose_clusters(gamma_map, nus)

    # -- update phase (Aggregator side) ---------------------------------------
    def aggregate_clusters(self) -> Dict[int, Tuple[Ciphertext, int]]:
        """Homomorphically sum each cluster's ciphertexts."""
        started = time.perf_counter()
        groups: Dict[int, List[Ciphertext]] = {}
        for client_id, cluster in self.assignments.items():
            groups.setdefault(cluster, []).append(self._ciphertexts[client_id])
        out = {
            cluster: (self.scheme.add_many(cts), len(cts))
            for cluster, cts in groups.items()
        }
        self._observe_phase("aggregate", time.perf_counter() - started)
        return out


# -- worker functions (module level so they fork+pickle cleanly) -----------

def _split(items: list, n: int) -> List[list]:
    size = max(1, (len(items) + n - 1) // n)
    return [items[i: i + size] for i in range(0, len(items), size)]


def _distance_chunk(args) -> List[Tuple[int, List[int]]]:
    p, q, g, s_vectors, f_keys, chunk, use_fastexp = args
    group = SchnorrGroup(p=p, q=q, g=g)
    fe = InnerProductFE(group, use_fastexp=use_fastexp)
    out = []
    for idx, alpha, betas in chunk:
        ct = Ciphertext(alpha=alpha, betas=tuple(betas))
        out.append((idx, fe.eval_elements(ct, s_vectors, f_keys)))
    return out


def _unmask_chunk(args) -> List[Tuple[int, int]]:
    p, q, g, bound, chunk = args
    group = SchnorrGroup(p=p, q=q, g=g)
    out = []
    for idx, g_nu_inv, gammas in chunk:
        best_cluster, best_distance = 0, None
        for cluster, gamma in enumerate(gammas):
            d2 = discrete_log(group, group.mul(gamma, g_nu_inv), bound)
            if best_distance is None or d2 < best_distance:
                best_cluster, best_distance = cluster, d2
        out.append((idx, best_cluster))
    return out


def _phase_histogram(registry):
    """The shared per-phase latency histogram (one per registry)."""
    return registry.histogram(
        "sheriff_crypto_phase_seconds",
        "Wall-clock seconds per secure k-means protocol phase",
        labelnames=("phase",),
        buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                 30.0, 60.0, 120.0),
    )


# -- top-level driver --------------------------------------------------------

@dataclass
class SecureKMeansResult:
    """Outcome of a full secure clustering run."""

    centroids: List[List[int]]
    assignments: Dict[str, int]
    iterations: int
    converged: bool
    iteration_seconds: List[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(self.iteration_seconds)


def run_secure_kmeans(
    points: Dict[str, Sequence[int]],
    k: int,
    value_bound: int = 100,
    group: Optional[SchnorrGroup] = None,
    rng: Optional[random.Random] = None,
    initial_centroids: Optional[Sequence[Sequence[int]]] = None,
    halt_threshold: float = 0.02,
    max_iterations: int = 15,
    n_workers: int = 1,
    use_fastexp: bool = True,
    telemetry=None,
) -> SecureKMeansResult:
    """Run the full protocol over a set of client profiles.

    ``points`` maps client id → integer profile vector (all the same
    length, coordinates in [0, value_bound]).  Initial centroids default
    to a deterministic sample of the client points — chosen by the
    Aggregator's RNG, mirroring a Forgy initialization.

    ``use_fastexp=False`` switches every party to the naive textbook
    arithmetic; the result (and the RNG draw sequence) is identical
    either way.  Pass a :class:`repro.obs.Telemetry` to record the
    ``sheriff_crypto_*`` counters and per-phase latency histograms.
    """
    if not points:
        raise ValueError("no client points")
    if k < 1:
        raise ValueError("k must be positive")
    group = group if group is not None else TEST_GROUP
    rng = rng if rng is not None else random.Random(2017)
    dims = {len(v) for v in points.values()}
    if len(dims) != 1:
        raise ValueError("all profiles must share a dimensionality")
    m = dims.pop()

    coordinator = KMeansCoordinator(group, m=m, value_bound=value_bound, rng=rng,
                                    n_workers=n_workers, use_fastexp=use_fastexp)
    aggregator = KMeansAggregator(group, coordinator, rng=rng,
                                  n_workers=n_workers, use_fastexp=use_fastexp)
    if telemetry is not None:
        from repro.crypto.obs import bind_crypto_telemetry

        bind_crypto_telemetry(telemetry)
        coordinator.bind_telemetry(telemetry)
        aggregator.bind_telemetry(telemetry)

    try:
        # Clients encrypt and go offline.
        encrypt_started = time.perf_counter()
        for client_id, point in points.items():
            client = ProfileClient(client_id, point, value_bound)
            aggregator.submit(
                client_id, client.encrypt_profile(coordinator.scheme,
                                                  coordinator.public_keys, rng)
            )
        aggregator._observe_phase("encrypt",
                                  time.perf_counter() - encrypt_started)

        if initial_centroids is None:
            ids = sorted(points)
            chosen = rng.sample(ids, min(k, len(ids)))
            initial_centroids = [list(points[c]) for c in chosen]
            while len(initial_centroids) < k:
                initial_centroids.append(list(points[rng.choice(ids)]))
        coordinator.set_centroids(initial_centroids)

        iteration_seconds: List[float] = []
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            started = time.perf_counter()
            _, changed = aggregator.assign_all()
            for cluster, (aggregate, cardinality) in aggregator.aggregate_clusters().items():
                coordinator.update_centroid(cluster, aggregate, cardinality)
            iteration_seconds.append(time.perf_counter() - started)
            if changed / len(points) <= halt_threshold:
                converged = True
                break

        return SecureKMeansResult(
            centroids=[list(c) for c in coordinator.centroids],
            assignments=dict(aggregator.assignments),
            iterations=iterations,
            converged=converged,
            iteration_seconds=iteration_seconds,
        )
    finally:
        aggregator.close()
        coordinator.close()
