"""Additively homomorphic vector ElGamal with messages at the exponent.

App. 10.4 verbatim: "Key generation outputs an m-dimensional vector of
secret keys x = (x_i) and a vector of corresponding public keys
h = (h_i) where h_i = g^{x_i}.  Encryption of vector c under public key
h … outputs α = g^r, (β_i = h_i^r · g^{c_i}) for random r."

Decryption recovers γ_i = β_i / α^{x_i} = g^{c_i} and then takes a
bounded discrete log.  Multiplying two ciphertexts component-wise adds
the plaintexts — the homomorphism the centroid-update phase (Fig. 18)
relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.dlog import discrete_log
from repro.crypto.group import SchnorrGroup


@dataclass(frozen=True)
class Ciphertext:
    """An encrypted integer vector: (α, β_1 … β_t)."""

    alpha: int
    betas: Tuple[int, ...]

    @property
    def dimensions(self) -> int:
        return len(self.betas)


class VectorElGamal:
    """Keyed encrypt/decrypt/homomorphic-combine over integer vectors."""

    def __init__(self, group: SchnorrGroup, dimensions: int) -> None:
        if dimensions < 1:
            raise ValueError("need at least one dimension")
        self.group = group
        self.dimensions = dimensions

    # -- keys ---------------------------------------------------------------
    def keygen(self, rng: random.Random) -> Tuple[List[int], List[int]]:
        """Return (secret key vector x, public key vector h)."""
        secret = [self.group.random_exponent(rng) for _ in range(self.dimensions)]
        public = [self.group.gexp(x) for x in secret]
        return secret, public

    # -- encryption -----------------------------------------------------------
    def encrypt(
        self,
        public: Sequence[int],
        plaintext: Sequence[int],
        rng: random.Random,
    ) -> Ciphertext:
        if len(plaintext) != self.dimensions or len(public) != self.dimensions:
            raise ValueError(
                f"expected {self.dimensions}-dimensional inputs, got "
                f"{len(plaintext)} plaintext / {len(public)} keys"
            )
        r = self.group.random_exponent(rng)
        alpha = self.group.gexp(r)
        betas = tuple(
            self.group.mul(self.group.exp(h, r), self.group.gexp(c))
            for h, c in zip(public, plaintext)
        )
        return Ciphertext(alpha=alpha, betas=betas)

    # -- decryption ----------------------------------------------------------
    def decrypt_component(
        self, secret: Sequence[int], ct: Ciphertext, index: int, bound: int
    ) -> int:
        gamma = self.group.div(ct.betas[index], self.group.exp(ct.alpha, secret[index]))
        return discrete_log(self.group, gamma, bound)

    def decrypt(
        self, secret: Sequence[int], ct: Ciphertext, bound: int
    ) -> List[int]:
        if len(secret) != ct.dimensions:
            raise ValueError("secret key / ciphertext dimension mismatch")
        return [
            self.decrypt_component(secret, ct, i, bound)
            for i in range(ct.dimensions)
        ]

    # -- homomorphism ---------------------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Ciphertext of the component-wise sum of the two plaintexts."""
        if a.dimensions != b.dimensions:
            raise ValueError("cannot add ciphertexts of different dimension")
        return Ciphertext(
            alpha=self.group.mul(a.alpha, b.alpha),
            betas=tuple(self.group.mul(x, y) for x, y in zip(a.betas, b.betas)),
        )

    def add_many(self, cts: Sequence[Ciphertext]) -> Ciphertext:
        if not cts:
            raise ValueError("nothing to aggregate")
        out = cts[0]
        for ct in cts[1:]:
            out = self.add(out, ct)
        return out
