"""Additively homomorphic vector ElGamal with messages at the exponent.

App. 10.4 verbatim: "Key generation outputs an m-dimensional vector of
secret keys x = (x_i) and a vector of corresponding public keys
h = (h_i) where h_i = g^{x_i}.  Encryption of vector c under public key
h … outputs α = g^r, (β_i = h_i^r · g^{c_i}) for random r."

Decryption recovers γ_i = β_i / α^{x_i} = g^{c_i} and then takes a
bounded discrete log.  Multiplying two ciphertexts component-wise adds
the plaintexts — the homomorphism the centroid-update phase (Fig. 18)
relies on.

Every exponentiation here is against a *fixed* base — the generator
``g`` or a public key ``h_i`` — so by default the scheme routes through
the windowed comb tables of :mod:`repro.crypto.fastexp` (several times
faster than built-in ``pow``, bit-identical results).  Pass
``use_fastexp=False`` to force the naive textbook path; the lockstep
tests prove both produce the same ciphertext bytes for the same RNG
stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto import fastexp
from repro.crypto.dlog import discrete_log
from repro.crypto.group import SchnorrGroup


@dataclass(frozen=True)
class Ciphertext:
    """An encrypted integer vector: (α, β_1 … β_t)."""

    alpha: int
    betas: Tuple[int, ...]

    @property
    def dimensions(self) -> int:
        return len(self.betas)


class VectorElGamal:
    """Keyed encrypt/decrypt/homomorphic-combine over integer vectors."""

    def __init__(
        self, group: SchnorrGroup, dimensions: int, use_fastexp: bool = True
    ) -> None:
        if dimensions < 1:
            raise ValueError("need at least one dimension")
        self.group = group
        self.dimensions = dimensions
        self.use_fastexp = use_fastexp
        # per-scheme handle cache so hot paths skip the global LRU lookup
        self._tables: Dict[int, fastexp.FixedBaseTable] = {}

    # -- fast/naive exponentiation seams ------------------------------------
    def _powers(self, base: int) -> fastexp.FixedBaseTable:
        table = self._tables.get(base)
        if table is None:
            table = self.group.powers_of(base)
            self._tables[base] = table
        return table

    def _exp(self, base: int, exponent: int) -> int:
        """base^exponent via the comb table or the naive path."""
        if self.use_fastexp:
            return self._powers(base).pow(exponent)
        return self.group.exp(base, exponent)

    def gexp(self, exponent: int) -> int:
        """g^exponent through the scheme's exponentiation strategy."""
        return self._exp(self.group.g, exponent)

    # -- keys ---------------------------------------------------------------
    def keygen(self, rng: random.Random) -> Tuple[List[int], List[int]]:
        """Return (secret key vector x, public key vector h)."""
        secret = [self.group.random_exponent(rng) for _ in range(self.dimensions)]
        public = [self.gexp(x) for x in secret]
        return secret, public

    # -- encryption -----------------------------------------------------------
    def encrypt(
        self,
        public: Sequence[int],
        plaintext: Sequence[int],
        rng: random.Random,
    ) -> Ciphertext:
        if len(plaintext) != self.dimensions or len(public) != self.dimensions:
            raise ValueError(
                f"expected {self.dimensions}-dimensional inputs, got "
                f"{len(plaintext)} plaintext / {len(public)} keys"
            )
        r = self.group.random_exponent(rng)
        if not self.use_fastexp:
            alpha = self.gexp(r)
            betas = tuple(
                self.group.mul(self._exp(h, r), self.gexp(c))
                for h, c in zip(public, plaintext)
            )
            return Ciphertext(alpha=alpha, betas=betas)
        # hot path: hoist the table handles and fold the mod-mul inline —
        # per-component dispatch overhead otherwise rivals the arithmetic
        p = self.group.p
        powers = self._powers
        gpow = powers(self.group.g).pow
        betas = tuple(
            powers(h).pow(r) * gpow(c) % p
            for h, c in zip(public, plaintext)
        )
        return Ciphertext(alpha=gpow(r), betas=betas)

    def rerandomize(
        self,
        public: Sequence[int],
        ct: Ciphertext,
        rng: random.Random,
        add_at: Optional[Dict[int, int]] = None,
    ) -> Ciphertext:
        """Fresh-looking ciphertext of the same vector, plus offsets.

        Multiplies in an encryption of the (mostly) zero vector without
        materializing it: α′ = α·g^r, β′_i = β_i·h_i^r, and for every
        ``(index, value)`` in ``add_at`` the matching β also picks up
        ``g^value`` — the single-coordinate additive mask the distance
        phase needs.  Exactly one RNG draw (r), and the result is
        bit-identical to ``add(ct, encrypt(public, mask_vector))`` with
        the same draw.
        """
        if len(public) != self.dimensions or ct.dimensions != self.dimensions:
            raise ValueError("public key / ciphertext dimension mismatch")
        r = self.group.random_exponent(rng)
        if not self.use_fastexp:
            mul = self.group.mul
            alpha = mul(ct.alpha, self.gexp(r))
            betas = [mul(b, self._exp(h, r)) for b, h in zip(ct.betas, public)]
            if add_at:
                for index, value in add_at.items():
                    betas[index] = mul(betas[index], self.gexp(value))
            return Ciphertext(alpha=alpha, betas=tuple(betas))
        p = self.group.p
        powers = self._powers
        gpow = powers(self.group.g).pow
        alpha = ct.alpha * gpow(r) % p
        betas = [b * powers(h).pow(r) % p for b, h in zip(ct.betas, public)]
        if add_at:
            for index, value in add_at.items():
                betas[index] = betas[index] * gpow(value) % p
        return Ciphertext(alpha=alpha, betas=tuple(betas))

    # -- decryption ----------------------------------------------------------
    def decrypt_component(
        self, secret: Sequence[int], ct: Ciphertext, index: int, bound: int
    ) -> int:
        gamma = self.group.div(ct.betas[index], self.group.exp(ct.alpha, secret[index]))
        return discrete_log(self.group, gamma, bound)

    def decrypt_components(
        self,
        secret: Sequence[int],
        ct: Ciphertext,
        indices: Sequence[int],
        bound: int,
    ) -> List[int]:
        """Decrypt several components of one ciphertext in a batch.

        The fast path exponentiates α through one ephemeral comb table
        (the base is shared by every component) and unmasks all the
        γ_i = β_i / α^{x_i} with a single Montgomery batch inversion,
        instead of one full inversion per component.
        """
        if not self.use_fastexp or len(indices) < 2:
            return [
                self.decrypt_component(secret, ct, i, bound) for i in indices
            ]
        group = self.group
        atab = fastexp.ephemeral_table(group.p, group.q, ct.alpha, len(indices))
        alpha_pows = [atab.pow(secret[i]) for i in indices]
        inverses = fastexp.batch_invert(group.p, alpha_pows)
        return [
            discrete_log(group, group.mul(ct.betas[i], inv), bound)
            for i, inv in zip(indices, inverses)
        ]

    def decrypt(
        self, secret: Sequence[int], ct: Ciphertext, bound: int
    ) -> List[int]:
        if len(secret) != ct.dimensions:
            raise ValueError("secret key / ciphertext dimension mismatch")
        return self.decrypt_components(secret, ct, range(ct.dimensions), bound)

    # -- homomorphism ---------------------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Ciphertext of the component-wise sum of the two plaintexts."""
        if a.dimensions != b.dimensions:
            raise ValueError("cannot add ciphertexts of different dimension")
        return Ciphertext(
            alpha=self.group.mul(a.alpha, b.alpha),
            betas=tuple(self.group.mul(x, y) for x, y in zip(a.betas, b.betas)),
        )

    def add_many(self, cts: Sequence[Ciphertext]) -> Ciphertext:
        """Single-pass homomorphic sum of a batch of ciphertexts.

        Folds each component mod p as it goes instead of materializing
        an intermediate :class:`Ciphertext` per element — the centroid
        aggregation touches every cluster member, so the per-object
        overhead used to dominate at scale.
        """
        if not cts:
            raise ValueError("nothing to aggregate")
        if len(cts) == 1:
            return cts[0]
        t = cts[0].dimensions
        for ct in cts:
            if ct.dimensions != t:
                raise ValueError("cannot add ciphertexts of different dimension")
        p = self.group.p
        alpha = 1
        betas = [1] * t
        for ct in cts:
            alpha = alpha * ct.alpha % p
            ct_betas = ct.betas
            for i in range(t):
                betas[i] = betas[i] * ct_betas[i] % p
        return Ciphertext(alpha=alpha, betas=tuple(betas))
