"""Span tracing on the simulated clock.

A price check is a tree of work: the ``price_check`` root fans out to
one ``fetch`` per vantage point (initiator, every IPC, every selected
PPC), then ``parse`` reconciles the rows and ``persist`` lands them.
The :class:`Tracer` records that tree as nested spans stamped with
*simulated* time — the clock the deployment itself runs on — so a
single check's timeline is inspectable end to end: which vantage was
slow, what the pool serialized, what the cache saved.

Design constraints, mirrored from :mod:`repro.obs.metrics`:

* span IDs come from a per-tracer counter, never a UUID or wall clock,
  so traced runs replay byte-identically from a seed;
* the fan-out *executes* eagerly while the world clock is frozen, so a
  fetch span records its simulated duration explicitly
  (``span(..., duration=d)``) — its bar on the timeline is the duration
  the engine later packs onto the worker pool;
* a parent span's end is stretched over its children, so the root
  ``price_check`` bar always covers the whole fan-out;
* the disabled twin (:data:`NULL_TRACER`) makes every ``span(…)`` a
  single no-op call.

Journey tracing (the queue tier) extends the tree across servers: a
job's trace starts at admission, a retroactive ``queue_wait`` span
covers the outbox dwell (``span(..., start=enqueued_at)``), and a
steal/transfer span carries a *link* — a ``(trace_id, span_id)``
reference to the prior owner's attempt — so the causal chain survives
the job changing hands.  Links are references, not parentage: the tree
stays single-rooted per job while cross-server hops stay navigable.

Export is JSONL (one span per line, ready for any trace viewer) and a
terminal renderer (:func:`render_trace`) draws the flame view;
:func:`critical_path` walks the longest-pole chain through the tree.
"""

from __future__ import annotations

import itertools
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, TextIO, Tuple

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "critical_path",
    "render_trace",
]


@dataclass
class Span:
    """One finished unit of traced work on the simulated timeline."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    attrs: Dict[str, object] = field(default_factory=dict)
    #: causal references to other spans — ``(trace_id, span_id)`` pairs.
    #: A steal links to the prior owner's attempt without reparenting.
    links: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "duration": round(self.duration, 6),
            "attrs": self.attrs,
            "links": [list(link) for link in self.links],
        }


class Tracer:
    """Produces nested spans stamped with the injected (sim) clock."""

    enabled = True

    def __init__(self, clock, max_spans: int = 100_000) -> None:
        self.clock = clock
        #: finished spans in completion order
        self.finished: List[Span] = []
        #: cap against unbounded growth in long deployments; the oldest
        #: complete traces are evicted first
        self.max_spans = max_spans
        self._ids = itertools.count(1)
        self._stack: List[Span] = []

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        duration: Optional[float] = None,
        start: Optional[float] = None,
        parent_id: Optional[int] = None,
        links: Optional[Sequence[Tuple[str, int]]] = None,
        **attrs: object,
    ) -> Iterator[Span]:
        """Open one span; nesting follows the ``with`` structure.

        ``trace_id`` keys the trace (the job id for price checks); a
        nested span inherits its parent's.  ``duration`` stamps an
        explicit simulated duration for work whose cost is *scheduled*
        rather than lived through (the eager fan-out executes while the
        world clock is frozen); without it the span ends at whatever
        the clock reads on exit.  ``start`` backdates the span for work
        that already happened (the queue tier stamps ``queue_wait``
        with the admission time at dispatch); ``parent_id`` overrides
        the stack parent to chain journey stages recorded outside any
        ``with`` nesting; ``links`` attaches causal references to spans
        in other parts of the tree (a steal links the prior attempt).
        """
        parent = self._stack[-1] if self._stack else None
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else ""
        opened = self.clock.now
        span = Span(
            trace_id=trace_id or f"trace-{next(self._ids)}",
            span_id=next(self._ids),
            parent_id=(
                parent_id
                if parent_id is not None
                else (parent.span_id if parent is not None else None)
            ),
            name=name,
            start=opened if start is None else start,
            end=opened,
            attrs=dict(attrs),
            links=list(links) if links else [],
        )
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            if duration is not None:
                span.end = span.start + duration
            else:
                # keep the stretch children already applied: a parent
                # must never end before its scheduled children do
                span.end = max(span.end, self.clock.now)
            if parent is not None and parent_id is None:
                # a parent covers its children on the timeline
                parent.end = max(parent.end, span.end)
                parent.start = min(parent.start, span.start)
            self.finished.append(span)
            if len(self.finished) > self.max_spans:
                self._evict()

    def _evict(self) -> None:
        """Shed the oldest *complete* traces first.

        Evicting span-by-span would leave decapitated traces (a root
        gone, its children lingering); instead whole traces go, least
        recently completed first, skipping any trace still open on the
        stack (its story is still being written) and never dooming the
        final remaining trace wholesale.  If dooming whole traces
        cannot relieve the pressure — one oversized trace is all there
        is — fall back to dropping its oldest spans so the cap always
        holds.
        """
        excess = len(self.finished) - self.max_spans
        if excess <= 0:
            return
        open_traces = {s.trace_id for s in self._stack}
        last_done: Dict[str, int] = {}
        counts: Dict[str, int] = {}
        for index, span in enumerate(self.finished):
            last_done[span.trace_id] = index
            counts[span.trace_id] = counts.get(span.trace_id, 0) + 1
        doomed: set = set()
        freed = 0
        for trace_id in sorted(last_done, key=last_done.__getitem__):
            if freed >= excess:
                break
            if trace_id in open_traces:
                continue
            if len(doomed) + 1 == len(counts):
                break  # would empty the log wholesale; trim spans instead
            doomed.add(trace_id)
            freed += counts[trace_id]
        if doomed:
            self.finished = [
                s for s in self.finished if s.trace_id not in doomed
            ]
        excess = len(self.finished) - self.max_spans
        if excess > 0:
            del self.finished[:excess]

    # -- reading back ------------------------------------------------------
    def trace_ids(self) -> List[str]:
        """Distinct trace IDs in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self.finished:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def spans_for(self, trace_id: str) -> List[Span]:
        return [s for s in self.finished if s.trace_id == trace_id]

    def clear(self) -> None:
        self.finished.clear()

    # -- export ------------------------------------------------------------
    def to_jsonl(self, trace_id: Optional[str] = None) -> str:
        spans = self.finished if trace_id is None else self.spans_for(trace_id)
        return "".join(
            json.dumps(s.to_dict(), sort_keys=True) + "\n" for s in spans
        )

    def export_jsonl(self, fh: TextIO, trace_id: Optional[str] = None) -> int:
        """Write spans as JSON Lines; returns the number written."""
        spans = self.finished if trace_id is None else self.spans_for(trace_id)
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return len(spans)


class NullTracer:
    """The disabled twin: ``span(…)`` costs one call and yields one
    shared inert span."""

    enabled = False
    finished: List[Span] = []

    _NULL_SPAN = Span(
        trace_id="", span_id=0, parent_id=None, name="", start=0.0, end=0.0
    )

    @contextmanager
    def span(self, name: str, trace_id=None, duration=None, start=None,
             parent_id=None, links=None, **attrs):
        yield self._NULL_SPAN

    def trace_ids(self) -> List[str]:
        return []

    def spans_for(self, trace_id: str) -> List[Span]:
        return []

    def clear(self) -> None:
        pass

    def to_jsonl(self, trace_id: Optional[str] = None) -> str:
        return ""

    def export_jsonl(self, fh: TextIO, trace_id: Optional[str] = None) -> int:
        return 0


NULL_TRACER = NullTracer()


# -- critical path ------------------------------------------------------------


def critical_path(spans: Sequence[Span]) -> List[Span]:
    """The longest-pole chain through one trace's span tree.

    Starting from the root that finishes last, repeatedly descend into
    the child whose end is latest — the child that gated the parent's
    completion.  The returned chain (root first) is the sequence of
    stages an operator must speed up to move the job's end-to-end
    latency; everything off it overlapped with something slower.
    """
    if not spans:
        return []
    by_id = {s.span_id: s for s in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    roots = children.get(None, [])
    if not roots:
        return []
    path: List[Span] = []
    current = max(roots, key=lambda s: (s.end, s.span_id))
    while current is not None:
        path.append(current)
        kids = children.get(current.span_id, [])
        current = max(kids, key=lambda s: (s.end, s.span_id)) if kids else None
    return path


# -- terminal rendering -------------------------------------------------------

#: attrs promoted into a span's label on the flame view, in this order
_LABEL_ATTRS = (
    "vantage", "proxy_id", "server", "rows", "ok", "cache_hit",
    "reason", "src", "dst", "attempt",
)


def _span_label(span: Span) -> str:
    parts = [span.name]
    for key in _LABEL_ATTRS:
        if key in span.attrs:
            value = span.attrs[key]
            parts.append(
                f"{key}={value}" if not isinstance(value, str) else value
            )
    if span.links:
        parts.append(
            "↩" + ",".join(f"#{span_id}" for _, span_id in span.links)
        )
    return " ".join(parts)


def render_trace(
    spans: Sequence[Span], width: int = 40, show_critical_path: bool = False
) -> str:
    """Draw one trace as an indented flame view plus a stage summary.

    Each line is one span: tree indentation, its label, a bar placed on
    the trace's ``[t0, t_end]`` window scaled to ``width`` characters,
    and the simulated duration.  Journey traces that cross servers
    render as one tree — steal spans carry ``src``/``dst`` and a ``↩``
    link back to the prior owner's attempt.  With
    ``show_critical_path=True`` a final section walks the longest-pole
    chain with each stage's share of the end-to-end window.
    """
    if not spans:
        return "(no spans recorded)"
    by_id = {s.span_id: s for s in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (s.start, s.span_id))

    t0 = min(s.start for s in spans)
    t_end = max(s.end for s in spans)
    window = max(t_end - t0, 1e-9)
    label_width = max(
        len(_span_label(s)) + 2 * _depth(s, by_id) for s in spans
    )

    lines: List[str] = []
    trace_id = spans[0].trace_id
    lines.append(
        f"trace {trace_id} · {len(spans)} spans · "
        f"{window:.3f}s on the sim clock"
    )

    def draw(span: Span, depth: int) -> None:
        offset = int((span.start - t0) / window * width)
        filled = max(1, int(round(span.duration / window * width)))
        filled = min(filled, width - offset) or 1
        bar = " " * offset + "█" * filled
        label = "  " * depth + _span_label(span)
        lines.append(
            f"{label:<{label_width}}  |{bar:<{width}}| {span.duration:8.3f}s"
        )
        for kid in children.get(span.span_id, ()):
            draw(kid, depth + 1)

    for root in children.get(None, ()):
        draw(root, 0)

    # stage summary: where the simulated seconds went, by span name
    totals: Dict[str, List[float]] = {}
    for span in spans:
        totals.setdefault(span.name, []).append(span.duration)
    lines.append("")
    lines.append(f"{'stage':<14}{'spans':>7}{'total_s':>10}{'max_s':>10}")
    for name in sorted(totals, key=lambda n: -sum(totals[n])):
        durations = totals[name]
        lines.append(
            f"{name:<14}{len(durations):>7}"
            f"{sum(durations):>10.3f}{max(durations):>10.3f}"
        )

    if show_critical_path:
        path = critical_path(spans)
        lines.append("")
        lines.append("critical path (longest pole, root → leaf):")
        for span in path:
            share = span.duration / window
            lines.append(
                f"  {_span_label(span):<{max(label_width, 1)}}"
                f" {span.duration:8.3f}s  {share:6.1%} of window"
            )
    return "\n".join(lines)


def _depth(span: Span, by_id: Dict[int, Span]) -> int:
    depth = 0
    current = span
    while current.parent_id is not None and current.parent_id in by_id:
        current = by_id[current.parent_id]
        depth += 1
    return depth
