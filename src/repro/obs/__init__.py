"""``repro.obs`` — telemetry for the $heriff pipeline.

Three layers:

* :mod:`repro.obs.metrics` — a labeled metrics registry (Counter /
  Gauge / Histogram) with Prometheus-style text exposition, threaded
  through the hot paths of the engine, dispatch, fault injection, the
  peer overlay, and the database;
* :mod:`repro.obs.trace` — span tracing on the simulated clock, so a
  single job's journey (admission → queue → steal/retry → fetch →
  persist) is inspectable end to end, across servers;
* :mod:`repro.obs.flightrecorder` — a bounded per-job structured event
  log (the queue tier's lifecycle decisions), one lookup per job;
* :mod:`repro.obs.slo` — declared latency/availability objectives with
  error-budget accounting on the sim clock;
* the live operator panels of :mod:`repro.core.monitoring`, which
  render from metrics snapshots.

The :class:`Telemetry` facade bundles one registry + one tracer + one
flight recorder and is what deployments inject
(``PriceSheriff(world, telemetry=Telemetry())``).  The default
everywhere is :data:`NULL_TELEMETRY` — disabled, zero-cost, and
guaranteed not to perturb determinism (which holds with telemetry on,
too; instrumentation never consumes RNG or advances clocks).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.flightrecorder import (
    FlightEvent,
    FlightRecorder,
    NULL_FLIGHT_RECORDER,
    NullFlightRecorder,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_default_registry,
    set_default_registry,
)
from repro.obs.slo import SLO, SLOEngine, SLOStatus, build_default_slos
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    critical_path,
    render_trace,
)

__all__ = [
    "Counter",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_FLIGHT_RECORDER",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NullFlightRecorder",
    "NullRegistry",
    "NullTracer",
    "SLO",
    "SLOEngine",
    "SLOStatus",
    "Span",
    "Telemetry",
    "Tracer",
    "build_default_slos",
    "critical_path",
    "get_default_registry",
    "render_trace",
    "set_default_registry",
]


class Telemetry:
    """One deployment's registry + tracer + flight recorder, with a
    disabled twin.

    ``Telemetry()`` is enabled with a fresh registry; the tracer and
    flight recorder are created lazily by :meth:`bind_clock` because
    both stamp events with the deployment's simulated clock, which the
    sheriff owns.  Pass ``metrics_only=True`` to keep the registry but
    skip span and flight recording (benchmarks want counters without
    the journey log).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        enabled: bool = True,
        metrics_only: bool = False,
    ) -> None:
        self.enabled = enabled
        self.metrics_only = metrics_only
        self.flights = NULL_FLIGHT_RECORDER
        if not enabled:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER
        else:
            self.registry = registry if registry is not None else MetricsRegistry()
            self.tracer = tracer if tracer is not None else NULL_TRACER

    def bind_clock(self, clock) -> "Telemetry":
        """Attach the sim clock; creates the tracer and flight recorder
        if they are wanted."""
        if self.enabled and not self.metrics_only:
            if self.tracer is NULL_TRACER:
                self.tracer = Tracer(clock)
            if self.flights is NULL_FLIGHT_RECORDER:
                self.flights = FlightRecorder(clock)
        return self

    @classmethod
    def disabled(cls) -> "Telemetry":
        return NULL_TELEMETRY


#: the shared disabled instance every component defaults to
NULL_TELEMETRY = Telemetry(enabled=False)
