"""Service-level objectives over the telemetry plane.

The paper pitches $heriff as a *deployed service*: operators promise
"95% of price checks finish within two simulated minutes" and need to
know — before users complain — whether the promise holds and how fast
the error budget is burning.  This module turns those promises into
declared :class:`SLO` objects evaluated against live metrics
snapshots, entirely on the simulated clock.

Two SLO kinds:

* **latency** — a good event is an observation ≤ ``threshold`` seconds
  in the named histogram; the good count comes from
  :meth:`Histogram.count_le`, which is conservative (observations in
  the bucket straddling the threshold are not credited), so compliance
  is never over-reported;
* **availability** — good and bad events are counted by two metrics
  (counter or histogram); compliance is ``good / (good + bad)``.

Evaluation is a pure read of the registry: no RNG, no clock advance,
no control-flow change — the determinism contract of the whole
telemetry plane.  Burn-rate *probes* (windowed, delta-based, for the
supervisor's alert-only components) live in :mod:`repro.ops.health`
next to the other probes; they read through :meth:`SLOEngine.counts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "SLO",
    "SLOEngine",
    "SLOStatus",
    "build_default_slos",
]


@dataclass(frozen=True)
class SLO:
    """One declared objective over the metrics plane."""

    name: str
    #: "latency" or "availability"
    kind: str
    #: target good-event fraction in [0, 1), e.g. 0.95
    objective: float
    #: latency: the histogram of durations; availability: the
    #: good-event metric (counter value or histogram observation count)
    metric: str
    #: latency only — a good event is an observation ≤ threshold seconds
    threshold: float = 0.0
    #: availability only — the bad-event metric
    bad_metric: str = ""
    #: label filter applied to ``bad_metric`` (e.g. only
    #: ``event="job_failed"`` out of a recovery counter)
    bad_labels: Tuple[Tuple[str, str], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO {self.name!r} objective {self.objective!r} "
                "must be in (0, 1)"
            )
        if self.kind == "latency" and self.threshold <= 0.0:
            raise ValueError(f"latency SLO {self.name!r} needs a threshold")
        if self.kind == "availability" and not self.bad_metric:
            raise ValueError(
                f"availability SLO {self.name!r} needs a bad_metric"
            )

    @property
    def error_budget(self) -> float:
        """The tolerated bad-event fraction, ``1 - objective``."""
        return 1.0 - self.objective


@dataclass
class SLOStatus:
    """One SLO's compliance snapshot at a sim-clock instant."""

    name: str
    kind: str
    objective: float
    time: float
    good: float
    total: float
    description: str = ""

    @property
    def compliance(self) -> float:
        """Good-event fraction; vacuously 1.0 with no events."""
        return self.good / self.total if self.total > 0 else 1.0

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget burned so far (can exceed 1.0).

        Equivalently the *cumulative burn rate*: 1.0 means bad events
        arrived exactly at the tolerated rate over the whole window.
        """
        return (1.0 - self.compliance) / self.error_budget

    @property
    def met(self) -> bool:
        return self.compliance >= self.objective

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "time": round(self.time, 6),
            "good": self.good,
            "total": self.total,
            "compliance": round(self.compliance, 6),
            "error_budget": round(self.error_budget, 6),
            "budget_consumed": round(self.budget_consumed, 6),
            "met": self.met,
            "description": self.description,
        }


class SLOEngine:
    """Declared SLOs evaluated against one deployment's registry."""

    def __init__(self, registry, clock) -> None:
        self.registry = registry
        self.clock = clock
        self._slos: Dict[str, SLO] = {}

    # -- declaration -------------------------------------------------------
    def declare(self, slo: SLO) -> SLO:
        if slo.name in self._slos:
            raise ValueError(f"SLO {slo.name!r} already declared")
        self._slos[slo.name] = slo
        return slo

    def declare_latency(
        self,
        name: str,
        metric: str,
        threshold: float,
        objective: float,
        description: str = "",
    ) -> SLO:
        return self.declare(SLO(
            name=name, kind="latency", objective=objective, metric=metric,
            threshold=threshold, description=description,
        ))

    def declare_availability(
        self,
        name: str,
        good_metric: str,
        bad_metric: str,
        objective: float,
        bad_labels: Tuple[Tuple[str, str], ...] = (),
        description: str = "",
    ) -> SLO:
        return self.declare(SLO(
            name=name, kind="availability", objective=objective,
            metric=good_metric, bad_metric=bad_metric,
            bad_labels=bad_labels, description=description,
        ))

    def slos(self) -> List[SLO]:
        return list(self._slos.values())

    def get(self, name: str) -> Optional[SLO]:
        return self._slos.get(name)

    # -- evaluation --------------------------------------------------------
    def _events(
        self, metric_name: str, labels: Tuple[Tuple[str, str], ...] = ()
    ) -> float:
        """Event count carried by one metric (0.0 if never emitted)."""
        instrument = self.registry.get(metric_name)
        if instrument is None:
            return 0.0
        if getattr(instrument, "kind", "") == "histogram":
            return float(instrument.total_count())
        if labels:
            return float(instrument.value(**dict(labels)))
        return float(instrument.total)

    def counts(self, name: str) -> Tuple[float, float]:
        """``(good, total)`` event counts for one declared SLO."""
        slo = self._slos[name]
        if slo.kind == "latency":
            instrument = self.registry.get(slo.metric)
            if instrument is None:
                return 0.0, 0.0
            total = float(instrument.total_count())
            good = float(instrument.count_le(slo.threshold))
            return good, total
        good = self._events(slo.metric)
        bad = self._events(slo.bad_metric, slo.bad_labels)
        return good, good + bad

    def status(self, name: str) -> SLOStatus:
        slo = self._slos[name]
        good, total = self.counts(name)
        return SLOStatus(
            name=slo.name,
            kind=slo.kind,
            objective=slo.objective,
            time=self.clock.now,
            good=good,
            total=total,
            description=slo.description,
        )

    def evaluate(self) -> List[SLOStatus]:
        """Every declared SLO's status, in declaration order."""
        return [self.status(name) for name in self._slos]

    def report(self) -> Dict[str, object]:
        """JSON-ready snapshot (the ``repro slo`` / CI artifact shape)."""
        statuses = self.evaluate()
        return {
            "time": round(self.clock.now, 6),
            "slos": [s.to_dict() for s in statuses],
            "all_met": all(s.met for s in statuses),
        }


def build_default_slos(
    engine: SLOEngine,
    check_latency_threshold: float = 160.0,
    check_latency_objective: float = 0.90,
    queue_wait_threshold: float = 40.0,
    queue_wait_objective: float = 0.90,
    availability_objective: float = 0.99,
) -> SLOEngine:
    """Declare the stock $heriff objectives on ``engine``.

    Thresholds are simulated seconds; the defaults bracket the healthy
    fleet's fetch fan-out (seconds to a couple of minutes on the sim
    clock) so a fault-injected latency degradation burns budget while a
    clean run does not.
    """
    engine.declare_latency(
        "check-latency",
        metric="sheriff_check_latency_seconds",
        threshold=check_latency_threshold,
        objective=check_latency_objective,
        description="price checks finishing within the latency promise",
    )
    engine.declare_latency(
        "queue-wait",
        metric="sheriff_queue_wait_seconds",
        threshold=queue_wait_threshold,
        objective=queue_wait_objective,
        description="queued jobs dispatched without excessive outbox dwell",
    )
    engine.declare_availability(
        "job-availability",
        good_metric="sheriff_job_turnaround_seconds",
        bad_metric="sheriff_coordinator_recovery_total",
        bad_labels=(("event", "job_failed"),),
        objective=availability_objective,
        description="jobs completing rather than failing outright",
    )
    return engine
