"""Per-job flight recorder: a bounded structured event log.

Spans answer *where the simulated seconds went*; the flight recorder
answers *what happened to this job* — every lifecycle decision the
queue tier took (enqueue, shed, steal, retry, dispatch, dead-letter)
as one append-only record per job, keyed by job id.  When a job
dead-letters, its dead-letter entry carries the last flight event so a
post-mortem is a single ``repro journey <job_id>`` lookup, not a log
spelunk.

Bounds, mirrored from :class:`repro.obs.trace.Tracer`:

* at most ``max_jobs`` jobs are retained; admitting a new job past the
  cap evicts the *oldest job wholesale* (first-recorded order), never
  a partial log;
* each job's log is a ring of ``max_events_per_job`` events — overflow
  drops the oldest event and bumps the job's ``dropped`` counter so
  truncation is visible, not silent;
* sequence numbers come from a per-recorder counter and times from the
  injected sim clock, so recorded runs replay byte-identically.

The disabled twin (:data:`NULL_FLIGHT_RECORDER`) makes ``record(…)`` a
single no-op call, the same zero-cost contract as the null tracer.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

__all__ = [
    "FlightEvent",
    "FlightRecorder",
    "NULL_FLIGHT_RECORDER",
    "NullFlightRecorder",
]


@dataclass(frozen=True)
class FlightEvent:
    """One lifecycle decision about one job."""

    seq: int
    time: float
    job_id: str
    kind: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "time": round(self.time, 6),
            "job_id": self.job_id,
            "kind": self.kind,
            "detail": self.detail,
        }


class FlightRecorder:
    """Bounded per-job event log on the simulated clock."""

    enabled = True

    def __init__(
        self,
        clock,
        max_jobs: int = 4096,
        max_events_per_job: int = 64,
    ) -> None:
        self.clock = clock
        self.max_jobs = max_jobs
        self.max_events_per_job = max_events_per_job
        #: job_id -> event ring, insertion (first-recorded) order
        self._logs: Dict[str, List[FlightEvent]] = {}
        #: per-job count of events the ring overwrote
        self.dropped: Dict[str, int] = {}
        self._seq = itertools.count(1)

    def record(self, job_id: str, kind: str, **detail: object) -> FlightEvent:
        """Append one event to ``job_id``'s log; returns the event."""
        log = self._logs.get(job_id)
        if log is None:
            if len(self._logs) >= self.max_jobs:
                oldest = next(iter(self._logs))
                del self._logs[oldest]
                self.dropped.pop(oldest, None)
            log = self._logs[job_id] = []
        event = FlightEvent(
            seq=next(self._seq),
            time=self.clock.now,
            job_id=job_id,
            kind=kind,
            detail=dict(detail),
        )
        log.append(event)
        if len(log) > self.max_events_per_job:
            del log[0]
            self.dropped[job_id] = self.dropped.get(job_id, 0) + 1
        return event

    # -- reading back ------------------------------------------------------
    def events_for(self, job_id: str) -> List[FlightEvent]:
        return list(self._logs.get(job_id, ()))

    def last_event(self, job_id: str) -> Optional[FlightEvent]:
        log = self._logs.get(job_id)
        return log[-1] if log else None

    def jobs(self) -> List[str]:
        """Recorded job ids in first-recorded order."""
        return list(self._logs)

    def __len__(self) -> int:
        return sum(len(log) for log in self._logs.values())

    def clear(self) -> None:
        self._logs.clear()
        self.dropped.clear()

    # -- export ------------------------------------------------------------
    def to_jsonl(self, job_id: Optional[str] = None) -> str:
        if job_id is not None:
            events = self.events_for(job_id)
        else:
            events = [e for log in self._logs.values() for e in log]
            events.sort(key=lambda e: e.seq)
        return "".join(
            json.dumps(e.to_dict(), sort_keys=True) + "\n" for e in events
        )

    def export_jsonl(self, fh: TextIO, job_id: Optional[str] = None) -> int:
        """Write events as JSON Lines; returns the number written."""
        text = self.to_jsonl(job_id)
        fh.write(text)
        return text.count("\n")


class NullFlightRecorder:
    """The disabled twin: ``record(…)`` costs one call, keeps nothing."""

    enabled = False

    _NULL_EVENT = FlightEvent(seq=0, time=0.0, job_id="", kind="")

    def record(self, job_id: str, kind: str, **detail: object) -> FlightEvent:
        return self._NULL_EVENT

    def events_for(self, job_id: str) -> List[FlightEvent]:
        return []

    def last_event(self, job_id: str) -> Optional[FlightEvent]:
        return None

    def jobs(self) -> List[str]:
        return []

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        pass

    def to_jsonl(self, job_id: Optional[str] = None) -> str:
        return ""

    def export_jsonl(self, fh: TextIO, job_id: Optional[str] = None) -> int:
        return 0


NULL_FLIGHT_RECORDER = NullFlightRecorder()
