"""The metrics registry of the telemetry subsystem.

The deployed Price $heriff is operated through live panels and the
paper reasons about per-stage latencies, retry counts, and pollution
budgets; prior crowd-measurement systems stress that measurement
*quality* accounting — which vantage answered, how long it took, what
was dropped — is what makes detection results trustworthy.  This
module provides the primitive those panels read from: three instrument
kinds (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) with
optional labels, collected in a :class:`MetricsRegistry` that renders
Prometheus-style text exposition.

Two properties matter more than features:

* **zero-cost-when-disabled** — every instrument has a null twin
  (:data:`NULL_REGISTRY` hands them out) whose methods are single-line
  no-ops, so instrumented hot paths pay one attribute call when
  telemetry is off;
* **determinism-neutral** — instruments never consult an RNG, never
  read wall clocks, and never change control flow, so the tier-1
  serial==pipelined equivalence holds with telemetry on or off (pinned
  by ``tests/obs/test_telemetry_determinism.py``).

A process-wide default registry exists for scripts
(:func:`get_default_registry`); deployments inject their own instance
so two sheriffs in one process never share series.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "get_default_registry",
    "set_default_registry",
]


class MetricError(ValueError):
    """Bad metric declaration or use (name clash, label mismatch…)."""


#: simulated-seconds latency buckets — fetch round trips run seconds to
#: minutes on the sim clock, so the ladder is wider than Prometheus'
#: default HTTP buckets
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 20.0, 40.0, 80.0, 160.0, 320.0,
)

_INF = math.inf


def _fmt(value: float) -> str:
    """Prometheus-style number: integral values lose the trailing .0"""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return format(value, ".10g")


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _render_labels(labelnames: Sequence[str], labelvalues: Sequence[object]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


class _Instrument:
    """Shared label-handling machinery of the three instrument kinds."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: int = 4096,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.max_series = max_series
        self._children: Dict[Tuple[str, ...], object] = {}

    @property
    def enabled(self) -> bool:
        return True

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise MetricError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def _child(self, labels: Dict[str, object]):
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_series:
                raise MetricError(
                    f"metric {self.name!r} exceeded its label-cardinality "
                    f"budget of {self.max_series} series"
                )
            child = self._new_child()
            self._children[key] = child
        return child

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def remove(self, **labels: object) -> None:
        """Drop one labeled series (e.g. a detached server's gauges)."""
        self._children.pop(self._key(labels), None)

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(labelvalues, state)`` pairs, sorted for stable output."""
        return sorted(self._children.items())

    def labels_series(self) -> List[Tuple[Dict[str, str], object]]:
        """Like :meth:`series` but with labels as dicts (panel input)."""
        return [
            (dict(zip(self.labelnames, key)), state)
            for key, state in self.series()
        ]


class Counter(_Instrument):
    """Monotonically increasing count (jobs submitted, faults injected)."""

    kind = "counter"

    def _new_child(self) -> List[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        self._child(labels)[0] += amount

    def value(self, **labels: object) -> float:
        child = self._children.get(self._key(labels))
        return child[0] if child is not None else 0.0

    @property
    def total(self) -> float:
        """Sum over every labeled series."""
        return sum(c[0] for c in self._children.values())

    def expose(self, lines: List[str]) -> None:
        for key, child in self.series():
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, key)} "
                f"{_fmt(child[0])}"
            )


class Gauge(_Instrument):
    """A value that goes up and down (queue depth, busy workers)."""

    kind = "gauge"

    def _new_child(self) -> List[float]:
        return [0.0]

    def set(self, value: float, **labels: object) -> None:
        self._child(labels)[0] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        self._child(labels)[0] += amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self._child(labels)[0] -= amount

    def value(self, **labels: object) -> float:
        child = self._children.get(self._key(labels))
        return child[0] if child is not None else 0.0

    @property
    def total(self) -> float:
        return sum(c[0] for c in self._children.values())

    def expose(self, lines: List[str]) -> None:
        for key, child in self.series():
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, key)} "
                f"{_fmt(child[0])}"
            )


class _HistogramState:
    """Per-series histogram accumulator."""

    __slots__ = ("bucket_counts", "sum", "count", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf


class Histogram(_Instrument):
    """Distribution with fixed buckets (latencies, batch sizes).

    Buckets are *upper bounds* in ascending order; an implicit ``+Inf``
    bucket tops the ladder.  Quantiles are estimated by linear
    interpolation inside the owning bucket, clamped to the observed
    min/max so small samples don't report impossible tails.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: int = 4096,
    ) -> None:
        super().__init__(name, help, labelnames, max_series)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"histogram {name!r} buckets must be ascending and unique"
            )
        if bounds[-1] == _INF:
            bounds = bounds[:-1]
        self.buckets = bounds

    def _new_child(self) -> _HistogramState:
        return _HistogramState(len(self.buckets) + 1)

    def observe(self, value: float, **labels: object) -> None:
        state = self._child(labels)
        state.bucket_counts[bisect_left(self.buckets, value)] += 1
        state.sum += value
        state.count += 1
        state.min = min(state.min, value)
        state.max = max(state.max, value)

    # -- reading back -----------------------------------------------------
    def _merged(self, labels: Optional[Dict[str, object]]) -> Optional[_HistogramState]:
        """One series, or every series merged (``labels=None``)."""
        if labels is not None:
            return self._children.get(self._key(labels))  # type: ignore[arg-type]
        merged: Optional[_HistogramState] = None
        for state in self._children.values():
            if merged is None:
                merged = _HistogramState(len(self.buckets) + 1)
            merged.bucket_counts = [
                a + b for a, b in zip(merged.bucket_counts, state.bucket_counts)
            ]
            merged.sum += state.sum
            merged.count += state.count
            merged.min = min(merged.min, state.min)
            merged.max = max(merged.max, state.max)
        return merged

    def count(self, **labels: object) -> int:
        state = self._children.get(self._key(labels))
        return state.count if state is not None else 0

    def total_count(self) -> int:
        return sum(s.count for s in self._children.values())

    def count_le(self, bound: float, **labels: object) -> int:
        """Observations known to be ≤ ``bound``: the cumulative count of
        every bucket whose upper bound is ≤ ``bound``.

        Conservative by construction — observations in the bucket
        straddling ``bound`` (and in the ``+Inf`` overflow) are *not*
        counted, so an SLO computed from this never over-reports
        compliance.  Merges every series when labels are omitted.
        """
        state = self._merged(labels if labels else None)
        if state is None or state.count == 0:
            return 0
        k = bisect_right(self.buckets, bound)
        return sum(state.bucket_counts[:k])

    def total_sum(self) -> float:
        return sum(s.sum for s in self._children.values())

    def quantile(self, q: float, **labels: object) -> Optional[float]:
        """Estimated q-quantile (q in [0, 1]) of one series, or of all
        series merged when the metric's labels are not specified."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q!r} not in [0, 1]")
        state = self._merged(labels if labels else None)
        if state is None or state.count == 0:
            return None
        rank = q * state.count
        cumulative = 0
        for i, in_bucket in enumerate(state.bucket_counts):
            if in_bucket == 0:
                continue
            if cumulative + in_bucket >= rank:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i] if i < len(self.buckets) else state.max
                fraction = (max(rank, 1) - cumulative) / in_bucket
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, state.min), state.max)
            cumulative += in_bucket
        return state.max  # pragma: no cover - rank <= count always lands

    def percentiles(
        self, ps: Sequence[float] = (50.0, 95.0, 99.0), **labels: object
    ) -> Dict[str, Optional[float]]:
        """The panel shorthand: ``{"p50": …, "p95": …, "p99": …}``."""
        return {f"p{p:g}": self.quantile(p / 100.0, **labels) for p in ps}

    def expose(self, lines: List[str]) -> None:
        names = self.labelnames + ("le",)
        for key, state in self.series():
            cumulative = 0
            for bound, in_bucket in zip(
                self.buckets + (_INF,), state.bucket_counts
            ):
                cumulative += in_bucket
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(names, key + (_fmt(bound),))} "
                    f"{cumulative}"
                )
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_fmt(state.sum)}")
            lines.append(f"{self.name}_count{plain} {state.count}")


class MetricsRegistry:
    """Instrument factory + collection point for one deployment.

    Factories are get-or-create: asking twice for the same name returns
    the same instrument (so independently constructed components can
    share a series), but re-declaring a name as a different kind or
    with different labels is an error — silent divergence is how panels
    drift from reality.
    """

    enabled = True

    def __init__(self, max_series_per_metric: int = 4096) -> None:
        self._metrics: Dict[str, _Instrument] = {}
        self.max_series_per_metric = max_series_per_metric

    def _declare(self, cls, name: str, help: str, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.labelnames != tuple(
                labelnames
            ):
                raise MetricError(
                    f"metric {name!r} already declared as "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing
        metric = cls(
            name, help=help, labelnames=labelnames,
            max_series=self.max_series_per_metric, **kwargs,
        )
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._declare(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._metrics.get(name)

    def metrics(self) -> List[_Instrument]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def render_exposition(self) -> str:
        """Prometheus text exposition format, sorted for stable diffs."""
        lines: List[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            metric.expose(lines)
        return "\n".join(lines) + ("\n" if lines else "")


# -- the disabled twin --------------------------------------------------------

class _NullInstrument:
    """Does nothing, fast: the cost of disabled telemetry is one call."""

    kind = "null"
    name = ""
    help = ""
    labelnames: Tuple[str, ...] = ()
    enabled = False
    buckets: Tuple[float, ...] = ()
    total = 0.0

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def remove(self, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0

    def total_count(self) -> int:
        return 0

    def total_sum(self) -> float:
        return 0.0

    def count_le(self, bound: float, **labels: object) -> int:
        return 0

    def quantile(self, q: float, **labels: object) -> Optional[float]:
        return None

    def percentiles(self, ps=(50.0, 95.0, 99.0), **labels: object):
        return {f"p{p:g}": None for p in ps}

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        return []

    def labels_series(self) -> List[Tuple[Dict[str, str], object]]:
        return []

    def expose(self, lines: List[str]) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every factory returns the shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "", labelnames=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labelnames=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def metrics(self) -> List[_Instrument]:
        return []

    def render_exposition(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()

# -- the process-wide default -------------------------------------------------

_default_registry = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    """The process-wide registry scripts fall back to."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default (tests install a fresh one)."""
    global _default_registry
    _default_registry = registry
    return registry
