"""Shared datasets and scale presets for the experiment modules.

Several tables/figures are views over the *same* underlying run (the
live deployment feeds Table 2/3/4 and Figs. 9/10; the four-country case
study feeds Table 5 and Figs. 12/13; the temporal study feeds Figs.
14/15 and the Sect. 7.5 statistics).  This module builds each underlying
dataset once per process and caches it per scale.

Scales:

* ``test`` — seconds; used by the unit tests of the experiment modules;
* ``default`` — minutes; what the benchmark harness runs;
* ``paper`` — the full Sect. 6/7 numbers (hours; for completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.clients.ipc import DEFAULT_IPC_SITES
from repro.workloads.crawlstudy import (
    CrawlStudy,
    TemporalStudyResult,
    four_country_case_study,
    temporal_study,
)
from repro.workloads.deployment import (
    DeploymentConfig,
    DeploymentDataset,
    LiveDeployment,
)
from repro.workloads.population import PopulationConfig


@dataclass(frozen=True)
class Scale:
    """All size knobs for one preset."""

    name: str
    # live deployment
    n_users: int
    n_requests: int
    n_extra_pd_stores: int
    n_uniform_stores: int
    n_content_domains: int
    ipc_sites: Tuple[Tuple[str, str, float], ...]
    # systematic crawl (Fig. 11)
    crawl_domains: int
    crawl_products: int
    crawl_repetitions: int
    # four-country case study (Table 5, Figs. 12–13)
    case_products: int
    case_repetitions: int
    # temporal study (Figs. 14–15, Sect. 7.5)
    temporal_products: int
    temporal_days: int
    temporal_checks_per_day: int
    # profile clustering (Fig. 8)
    profile_users: int
    profile_m_grid: Tuple[int, ...]
    profile_k_grid: Tuple[int, ...]
    # secure k-means timing (Fig. 8(c))
    kmeans_users: int
    kmeans_m_values: Tuple[int, ...]
    kmeans_k_grid: Tuple[int, ...]
    # Alexa sweep (Sect. 7.6)
    alexa_domains: int
    alexa_products: int
    alexa_days: int


_ES_HEAVY_IPCS = DEFAULT_IPC_SITES[:10]

SCALES: Dict[str, Scale] = {
    "test": Scale(
        name="test",
        n_users=40, n_requests=80, n_extra_pd_stores=5, n_uniform_stores=10,
        n_content_domains=40, ipc_sites=tuple(_ES_HEAVY_IPCS),
        crawl_domains=4, crawl_products=3, crawl_repetitions=2,
        case_products=3, case_repetitions=2,
        temporal_products=2, temporal_days=4, temporal_checks_per_day=2,
        profile_users=40, profile_m_grid=(20, 30, 40),
        profile_k_grid=(2, 4, 6, 8),
        kmeans_users=12, kmeans_m_values=(10,), kmeans_k_grid=(3, 5),
        alexa_domains=6, alexa_products=2, alexa_days=2,
    ),
    "default": Scale(
        name="default",
        n_users=150, n_requests=600, n_extra_pd_stores=20,
        n_uniform_stores=60, n_content_domains=220,
        ipc_sites=tuple(DEFAULT_IPC_SITES),
        crawl_domains=24, crawl_products=8, crawl_repetitions=5,
        case_products=8, case_repetitions=6,
        temporal_products=8, temporal_days=20, temporal_checks_per_day=2,
        profile_users=150, profile_m_grid=(50, 80, 110, 140, 170, 200),
        profile_k_grid=(5, 10, 15, 20, 30, 40, 60),
        kmeans_users=120, kmeans_m_values=(50, 100), kmeans_k_grid=(20, 40, 60),
        alexa_domains=40, alexa_products=3, alexa_days=3,
    ),
    "paper": Scale(
        name="paper",
        n_users=1265, n_requests=5700, n_extra_pd_stores=47,
        n_uniform_stores=1900, n_content_domains=400,
        ipc_sites=tuple(DEFAULT_IPC_SITES),
        crawl_domains=24, crawl_products=30, crawl_repetitions=15,
        case_products=25, case_repetitions=15,
        temporal_products=30, temporal_days=20, temporal_checks_per_day=2,
        profile_users=500, profile_m_grid=(50, 100, 150, 200),
        profile_k_grid=(10, 20, 40, 60, 100, 150, 200),
        kmeans_users=500, kmeans_m_values=(50, 100),
        kmeans_k_grid=(50, 100, 150, 200),
        alexa_domains=400, alexa_products=5, alexa_days=3,
    ),
}


def scale(name: str) -> Scale:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; pick one of {sorted(SCALES)}"
        ) from None


_live_cache: Dict[str, DeploymentDataset] = {}
_crawl_cache: Dict[str, List] = {}
_case_cache: Dict[str, Dict] = {}
_temporal_cache: Dict[str, TemporalStudyResult] = {}
_study_cache: Dict[str, CrawlStudy] = {}


def clear_caches() -> None:
    for cache in (_live_cache, _crawl_cache, _case_cache, _temporal_cache,
                  _study_cache):
        cache.clear()


def live_dataset(scale_name: str = "default") -> DeploymentDataset:
    """The Sect. 6 live deployment run (cached per scale)."""
    if scale_name not in _live_cache:
        s = scale(scale_name)
        config = DeploymentConfig(
            n_users=s.n_users,
            n_requests=s.n_requests,
            n_extra_pd_stores=s.n_extra_pd_stores,
            n_uniform_stores=s.n_uniform_stores,
            n_content_domains=s.n_content_domains,
            ipc_sites=s.ipc_sites,
            population=PopulationConfig(n_users=s.n_users, seed=2021),
        )
        _live_cache[scale_name] = LiveDeployment(config).run()
    return _live_cache[scale_name]


def crawl_study(scale_name: str = "default") -> CrawlStudy:
    """The parallel crawling back-end over the live world (cached)."""
    if scale_name not in _study_cache:
        dataset = live_dataset(scale_name)
        s = scale(scale_name)
        _study_cache[scale_name] = CrawlStudy(
            dataset.world, dataset.sheriff, ipc_sites=s.ipc_sites,
        )
    return _study_cache[scale_name]


def crawl_dataset(scale_name: str = "default") -> List:
    """The Sect. 7.1 systematic crawl from Spain (Fig. 11, cached)."""
    if scale_name not in _crawl_cache:
        dataset = live_dataset(scale_name)
        s = scale(scale_name)
        from repro.analysis.pricediff import domain_diff_stats

        ranked = domain_diff_stats(dataset.results)
        domains = [st.domain for st in ranked[: s.crawl_domains]]
        if not domains:  # tiny test runs may not accumulate enough
            domains = ["steampowered.com", "abercrombie.com"]
        study = crawl_study(scale_name)
        _crawl_cache[scale_name] = study.crawl_domains(
            domains,
            products_per_domain=s.crawl_products,
            repetitions=s.crawl_repetitions,
            country="ES",
        )
    return _crawl_cache[scale_name]


def case_study_data(scale_name: str = "default") -> Dict:
    """Sect. 7.3 four-country batches for chegg/jcpenney/amazon (cached)."""
    if scale_name not in _case_cache:
        s = scale(scale_name)
        study = crawl_study(scale_name)
        _case_cache[scale_name] = four_country_case_study(
            study,
            products_per_domain=s.case_products,
            repetitions=s.case_repetitions,
        )
    return _case_cache[scale_name]


def temporal_data(scale_name: str = "default") -> TemporalStudyResult:
    """The Sect. 7.5 temporal study (cached)."""
    if scale_name not in _temporal_cache:
        s = scale(scale_name)
        dataset = live_dataset(scale_name)
        # a dedicated backend with Spain-local IPCs and room for the
        # whole nine-browser fleet per request
        study = CrawlStudy(
            dataset.world, dataset.sheriff,
            ipc_sites=tuple(DEFAULT_IPC_SITES[:3]),
            max_ppcs_per_request=9,
        )
        _temporal_cache[scale_name] = temporal_study(
            study,
            products_per_domain=s.temporal_products,
            days=s.temporal_days,
            checks_per_day=s.temporal_checks_per_day,
        )
    return _temporal_cache[scale_name]
