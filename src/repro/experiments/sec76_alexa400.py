"""Sect. 7.6 — the Alexa top-400 e-commerce sweep.

Each of the most popular e-commerce sites is checked on 5 random
products for 3 consecutive days from Spain.  Paper finding: none of
them (beyond the 3 already known) returns different prices to distinct
users within the same country — so no PDI-PD signal among the most
popular retailers either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.pricediff import within_country_percentages
from repro.analysis.reports import format_table
from repro.experiments import registry
from repro.workloads.alexa import build_alexa_ecommerce


@dataclass
class Sec76Result:
    n_domains: int
    n_requests: int
    within_country: Dict[str, float]  # domain → % requests with ES diff

    def domains_with_in_country_difference(self) -> List[str]:
        return sorted(d for d, pct in self.within_country.items() if pct > 0)

    def render(self) -> str:
        flagged = self.domains_with_in_country_difference()
        rows = [(d, f"{self.within_country[d]:.2f}%") for d in flagged]
        table = format_table(
            rows or [("(none)", "0.00%")],
            headers=("Domain", "% requests with in-country diff"),
            title="Sect. 7.6: Alexa top-400 — within-country differences",
        )
        return table + (
            f"\nchecked {self.n_domains} domains with {self.n_requests} "
            f"requests; {len(flagged)} showed in-country differences"
        )


def run(scale: str = "default") -> Sec76Result:
    s = registry.scale(scale)
    dataset = registry.live_dataset(scale)
    if dataset.world.internet.has_domain("alexa-shop-000.example"):
        # already built by an earlier run against the cached world
        stores = [
            dataset.world.internet.site(f"alexa-shop-{i:03d}.example")
            for i in range(s.alexa_domains)
        ]
    else:
        stores = build_alexa_ecommerce(
            dataset.world.internet, dataset.world.geodb, dataset.world.rates,
            n=s.alexa_domains,
        )
    study = registry.crawl_study(scale)
    for store in stores:
        # sanction the new domains on the crawl back-end *and* on the
        # live deployment, whose PPCs serve the crawl's remote requests
        study.backend.whitelist.add(store.domain)
        dataset.sheriff.whitelist.add(store.domain)
    results = study.alexa_sweep(
        [store.domain for store in stores],
        products_per_domain=s.alexa_products,
        days=s.alexa_days,
    )
    pct = within_country_percentages(results, ["ES"])
    within = {
        domain: by_country.get("ES", 0.0) for domain, by_country in pct.items()
    }
    return Sec76Result(
        n_domains=len(stores),
        n_requests=len(results),
        within_country=within,
    )
