"""Sect. 7.5 statistics — is it A/B testing or PDI-PD?

Over the clean-profile PPC fleet of the temporal study:

* pairwise K-S tests between measurement points (paper: lowest D 0.3,
  all p-values above 0.55 → same distribution);
* ~50% probability for any point to see the higher price;
* multi-linear regression of price on OS/browser/time features (paper:
  best R² ≈ 0.431 with no significant feature);
* random forest feature importances uniformly low.

Conclusion: the retailers do not use personal information —
A/B testing plus temporal tuning.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.reports import format_table
from repro.analysis.stats import ABTestVerdict, ab_test_verdict
from repro.experiments import registry


def point_samples(results, min_observations: int = 10) -> Dict[str, List[float]]:
    """Per measurement point: normalized prices across all checks.

    Only the *stable* measurement points are compared — the PPC fleet
    and the IPCs.  The initiating crawler gets a fresh identity every
    four checks (the clean-profile reset), so its per-identity samples
    are too short to say anything; points below ``min_observations``
    are dropped for the same reason.
    """
    samples: Dict[str, List[float]] = defaultdict(list)
    for result in results:
        prices = [
            (r.proxy_id, r.amount_eur)
            for r in result.valid_rows()
            if r.amount_eur is not None and r.kind in ("PPC", "IPC")
        ]
        if len(prices) < 2:
            continue
        values = sorted(p for _, p in prices)
        median = values[len(values) // 2]
        if median <= 0:
            continue
        for proxy_id, price in prices:
            samples[proxy_id].append(price / median)
    return {
        proxy_id: obs
        for proxy_id, obs in samples.items()
        if len(obs) >= min_observations
    }


@dataclass
class Sec75Result:
    verdicts: Dict[str, ABTestVerdict]

    def all_ab_testing(self) -> bool:
        return all(v.is_ab_testing for v in self.verdicts.values())

    def render(self) -> str:
        rows = []
        for domain, verdict in sorted(self.verdicts.items()):
            rows.append((
                domain,
                "A/B testing" if verdict.is_ab_testing else "possible PDI-PD",
                "-" if verdict.min_ks_p is None else round(verdict.min_ks_p, 3),
                round(verdict.regression_r2, 3),
                ", ".join(verdict.significant_features) or "none",
                "-" if verdict.forest_max_importance is None
                else round(verdict.forest_max_importance, 3),
            ))
        return format_table(
            rows,
            headers=("Domain", "Verdict", "min KS p", "R²",
                     "Significant features", "Max forest importance"),
            title="Sect. 7.5: A/B-testing vs PDI-PD verdicts",
        )


def run(scale: str = "default") -> Sec75Result:
    data = registry.temporal_data(scale)
    verdicts: Dict[str, ABTestVerdict] = {}
    for domain, results in data.results_by_domain.items():
        verdicts[domain] = ab_test_verdict(
            point_samples(results),
            features=data.features,
            prices=data.prices,
            feature_names=data.feature_names,
        )
    return Sec75Result(verdicts=verdicts)
