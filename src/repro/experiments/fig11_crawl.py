"""Fig. 11 — the systematic crawl from Spain confirms the live study.

The same two panels as Fig. 9, over the artificial crawl dataset (24
domains × 30 products × 15 repetitions in the paper).  Paper shape:
some domains exceed ×4 between maximum and minimum price
(anntaylor.com, steampowered.com, abercrombie.com).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.pricediff import DomainDiffStats, domain_diff_stats
from repro.analysis.reports import format_table
from repro.experiments import registry


@dataclass
class Fig11Result:
    stats: List[DomainDiffStats]
    n_requests: int

    def max_spread(self) -> float:
        return max(
            (s.spread_stats.maximum for s in self.stats), default=0.0
        )

    def render(self) -> str:
        rows = [
            (
                s.domain,
                s.n_requests,
                s.n_with_difference,
                f"{100 * s.spread_stats.median:.1f}%",
                f"{100 * s.spread_stats.maximum:.1f}%",
            )
            for s in self.stats
        ]
        return format_table(
            rows,
            headers=("Domain", "Requests", "With diff", "Median", "Max"),
            title="Fig. 11: crawled dataset (Spain) — per-domain differences",
        )


def run(scale: str = "default") -> Fig11Result:
    results = registry.crawl_dataset(scale)
    return Fig11Result(
        stats=domain_diff_stats(results, min_diff_requests=1),
        n_requests=len(results),
    )
