"""Fig. 2 — a sample result page with automatic currency conversion.

One price check of an electronics product on a geo-currency store,
requested in EUR, observed from the full 30-node IPC fleet plus
same-country PPC variants — reproducing the page layout: "You" first,
then the OS/browser variants in the initiator's country, then the
international rows with converted values and the low-confidence
asterisk on ambiguous symbols ($699-style originals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.browser.fingerprint import user_agent
from repro.core.pricecheck import PriceCheckResult
from repro.core.sheriff import PriceSheriff, SheriffWorld
from repro.workloads.stores import build_named_stores


@dataclass
class Fig2Result:
    check: PriceCheckResult

    def render(self) -> str:
        return self.check.render_result_page()

    @property
    def currencies_observed(self) -> List[str]:
        return sorted({
            r.detected_currency
            for r in self.check.valid_rows()
            if r.detected_currency
        })


def run(scale: str = "default") -> Fig2Result:
    """Build a dedicated small world: Fig. 2 is a single request."""
    world = SheriffWorld.create(seed=202)
    stores = build_named_stores(world)
    sheriff = PriceSheriff(world, n_measurement_servers=1)
    # same-country PPC variants (the OS/browser rows of the figure)
    for os_name, browser_name in (
        ("Windows 7", "Chrome"), ("Mac OSX", "Safari"), ("Linux", "Firefox"),
    ):
        browser = world.make_browser("ES", "Madrid",
                                     agent=user_agent(os_name, browser_name))
        sheriff.install_addon(browser)
    initiator = sheriff.install_addon(world.make_browser("ES", "Barcelona"))
    store = stores["digitalrev.com"]
    product = next(p for p in store.catalog if p.category == "electronics")
    check = initiator.check_price(
        store.product_url(product.product_id), requested_currency="EUR"
    )
    return Fig2Result(check=check)
