"""Table 2 — top-10 countries by number of price check requests.

Paper: Spain 2554, France 917, USA 581, Switzerland 387, Germany 217,
Belgium 161, UK 126, Netherlands 96, Cyprus 95, Canada 92.  The
reproduction's population follows the same weights, so the *ranking*
(Spain-dominant, France second, long tail) is the reproduced shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.reports import format_table
from repro.experiments import registry

PAPER_TOP10 = (
    ("ES", 2554), ("FR", 917), ("US", 581), ("CH", 387), ("DE", 217),
    ("BE", 161), ("GB", 126), ("NL", 96), ("CY", 95), ("CA", 92),
)


@dataclass
class Table2Result:
    top10: List[Tuple[str, int]]
    n_countries: int

    def render(self) -> str:
        return format_table(
            self.top10,
            headers=("Country", "# Requests"),
            title=(
                "Table 2: top-10 countries by price check requests "
                f"({self.n_countries} countries total)"
            ),
        )


def run(scale: str = "default") -> Table2Result:
    dataset = registry.live_dataset(scale)
    counts = dataset.request_countries
    return Table2Result(
        top10=counts.most_common(10),
        n_countries=len(counts),
    )
