"""Experiment harnesses: one module per table/figure of the paper.

Each module exposes a ``run(scale="default")`` entry point returning a
result object with the figure/table's data plus a ``render()`` method
that prints the same rows/series the paper reports.  Shared underlying
datasets (the live deployment, the four-country case study, the
temporal study) are built once per process in
:mod:`repro.experiments.registry`.
"""

from repro.experiments import registry

__all__ = ["registry"]
