"""Fig. 12 — per-country in-country differences for the three retailers.

One scatter per (retailer, country): x = minimum price observed for a
product, y = maximum relative in-country difference for that product.
Paper shape: chegg.com spreads 3–7% on €10–€100 textbooks; jcpenney.com
stays below 2% except exactly 7% in the UK; amazon.com's values sit on
the countries' VAT scales (ES 21/10%, FR 20/5.5%, DE 19/7%, GB 20/5%).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reports import format_table
from repro.experiments import registry


@dataclass
class Fig12Result:
    #: (domain, country) → list of (min price €, max relative diff)
    scatter: Dict[Tuple[str, str], List[Tuple[float, float]]]

    def diffs(self, domain: str, country: str) -> List[float]:
        return [d for _, d in self.scatter.get((domain, country), []) if d > 0]

    def max_diff(self, domain: str, country: str) -> float:
        return max(self.diffs(domain, country), default=0.0)

    def render(self) -> str:
        rows = []
        for (domain, country), points in sorted(self.scatter.items()):
            diffs = [d for _, d in points if d > 0]
            rows.append((
                domain, country, len(points), len(diffs),
                f"{100 * max(diffs, default=0):.1f}%",
            ))
        return format_table(
            rows,
            headers=("Domain", "Country", "Products", "With diff", "Max diff"),
            title="Fig. 12: in-country differences per retailer per country",
        )


def run(scale: str = "default") -> Fig12Result:
    case = registry.case_study_data(scale)
    scatter: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for domain, by_country in case.items():
        for country, results in by_country.items():
            # Differences are taken *within a single check* — all points
            # fetch simultaneously, factoring out temporal variation —
            # then the per-product maximum over all repetitions is kept.
            min_price: Dict[str, float] = {}
            max_diff: Dict[str, float] = defaultdict(float)
            for result in results:
                prices = [
                    r.amount_eur for r in result.rows_in_country(country)
                    if r.amount_eur is not None
                ]
                if len(prices) < 2:
                    continue
                low = min(prices)
                if low <= 0:
                    continue
                url = result.url
                min_price[url] = min(min_price.get(url, low), low)
                max_diff[url] = max(max_diff[url], (max(prices) - low) / low)
            points = [
                (min_price[url], max_diff[url]) for url in min_price
            ]
            scatter[(domain, country)] = sorted(points)
    return Fig12Result(scatter=scatter)
