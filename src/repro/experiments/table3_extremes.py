"""Table 3 — extreme relative and absolute price differences.

Paper extremes: steampowered.com ×2.55 (€13.12), abercrombie.com ×2.38,
luisaviaroma.com ×2.32 / €1201 absolute, …, plus the >€10k digital
camera case (Phase One IQ280 on digitalrev.com) discussed in the text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.pricediff import ExtremeDifference, extreme_differences
from repro.analysis.reports import format_table
from repro.experiments import registry


@dataclass
class Table3Result:
    rows: List[ExtremeDifference]
    iq280_absolute_eur: Optional[float]

    def render(self) -> str:
        data = [
            (r.domain, round(r.relative_times, 2), round(r.absolute_eur, 2))
            for r in self.rows
        ]
        out = format_table(
            data,
            headers=("Domain", "Relative (Times)", "Absolute (EUR)"),
            title="Table 3: extreme price differences",
        )
        if self.iq280_absolute_eur is not None:
            out += (
                f"\nPhase One IQ280 (digitalrev.com) absolute spread: "
                f"EUR {self.iq280_absolute_eur:,.0f}"
            )
        return out


def run(scale: str = "default", top: int = 10) -> Table3Result:
    dataset = registry.live_dataset(scale)
    rows = extreme_differences(dataset.results, top=top)
    iq280 = None
    for result in dataset.results:
        if "digitalrev-iq280" in result.url:
            prices = result.eur_prices()
            if len(prices) >= 2:
                spread = max(prices) - min(prices)
                iq280 = spread if iq280 is None else max(iq280, spread)
    return Table3Result(rows=rows, iq280_absolute_eur=iq280)
