"""Fig. 8 — doppelganger clustering evaluation.

(a) maximum silhouette vs the number of profile domains m, comparing
    "Users top domains" against "Alexa top domains" — Alexa wins and
    quality degrades as m grows;
(b) silhouette vs k — the curve climbs to ≈0.6 by k≈40 and flattens;
(c) wall-clock time of one privacy-preserving k-means iteration, single
    worker vs four parallel workers, for m ∈ {50, 100} across a k grid —
    the protocol is highly parallelizable.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.reports import format_table
from repro.crypto.group import TEST_GROUP
from repro.crypto.secure_kmeans import (
    KMeansAggregator,
    KMeansCoordinator,
    ProfileClient,
)
from repro.experiments import registry
from repro.profiles.kmeans import lloyd_kmeans, silhouette_score
from repro.profiles.vector import profile_from_counts


# -- donated profile collection ------------------------------------------------

def donated_histories(scale: str):
    """Domain-count histories of the users who opted in (Sect. 4).

    Returns ``(histories, dataset)`` — the dataset gives access to the
    content-domain popularity ranking for the "Alexa top" option.
    """
    dataset = registry.live_dataset(scale)
    histories = [
        addon.browser.browsing_profile_counts()
        for addon in dataset.population.donors()
    ]
    return histories, dataset


def _user_top_domains(histories: Sequence[Counter], m: int) -> List[str]:
    total: Counter = Counter()
    for h in histories:
        total.update(h)
    return [d for d, _ in total.most_common(m)]


def _alexa_top_domains(dataset, m: int) -> List[str]:
    # content domains are registered in designed popularity order
    domains = [
        d for d in dataset.world.internet.domains() if d.endswith(".web")
    ]
    return domains[:m]


def _profiles(histories: Sequence[Counter], domains: Sequence[str]):
    return {
        f"u{i}": list(profile_from_counts(h, domains).frequencies)
        for i, h in enumerate(histories)
    }


def _max_silhouette(points: Dict[str, List[float]], k_grid: Sequence[int],
                    seed: int = 11) -> float:
    ids = sorted(points)
    matrix = [points[i] for i in ids]
    best = -1.0
    for k in k_grid:
        if k >= len(ids):
            continue
        outcome = lloyd_kmeans(points, k, rng=random.Random(seed))
        labels = [outcome.assignments[i] for i in ids]
        if len(set(labels)) < 2:
            continue
        best = max(best, silhouette_score(matrix, labels))
    return best


# -- Fig. 8(a) ------------------------------------------------------------------

@dataclass
class Fig8aResult:
    m_values: List[int]
    user_top_scores: List[float]
    alexa_top_scores: List[float]

    def render(self) -> str:
        rows = list(zip(self.m_values,
                        [round(s, 3) for s in self.user_top_scores],
                        [round(s, 3) for s in self.alexa_top_scores]))
        return format_table(
            rows,
            headers=("m (domains)", "Users top", "Alexa top"),
            title="Fig. 8(a): max silhouette vs profile-domain list",
        )


def run_fig8a(scale: str = "default") -> Fig8aResult:
    s = registry.scale(scale)
    histories, dataset = donated_histories(scale)
    user_scores, alexa_scores = [], []
    for m in s.profile_m_grid:
        user_domains = _user_top_domains(histories, m)
        alexa_domains = _alexa_top_domains(dataset, m)
        user_scores.append(
            _max_silhouette(_profiles(histories, user_domains), s.profile_k_grid)
        )
        alexa_scores.append(
            _max_silhouette(_profiles(histories, alexa_domains), s.profile_k_grid)
        )
    return Fig8aResult(
        m_values=list(s.profile_m_grid),
        user_top_scores=user_scores,
        alexa_top_scores=alexa_scores,
    )


# -- Fig. 8(b) ------------------------------------------------------------------

@dataclass
class Fig8bResult:
    k_values: List[int]
    scores: List[float]

    def knee_k(self, fraction: float = 0.95) -> Optional[int]:
        """Smallest k reaching ``fraction`` of the best score."""
        valid = [(k, s) for k, s in zip(self.k_values, self.scores)
                 if s == s]  # drop NaN
        if not valid:
            return None
        best = max(s for _, s in valid)
        for k, s in valid:
            if s >= fraction * best:
                return k
        return None

    def render(self) -> str:
        rows = list(zip(self.k_values, [round(s, 3) for s in self.scores]))
        return format_table(
            rows, headers=("k (clusters)", "Silhouette"),
            title="Fig. 8(b): silhouette vs number of clusters",
        )


def run_fig8b(scale: str = "default", m: int = 100) -> Fig8bResult:
    s = registry.scale(scale)
    histories, dataset = donated_histories(scale)
    m = min(m, max(s.profile_m_grid))
    domains = _alexa_top_domains(dataset, m)
    points = _profiles(histories, domains)
    ids = sorted(points)
    matrix = [points[i] for i in ids]
    scores = []
    for k in s.profile_k_grid:
        if k >= len(ids):
            scores.append(float("nan"))
            continue
        outcome = lloyd_kmeans(points, k, rng=random.Random(13))
        labels = [outcome.assignments[i] for i in ids]
        if len(set(labels)) < 2:
            scores.append(float("nan"))
            continue
        scores.append(silhouette_score(matrix, labels))
    return Fig8bResult(k_values=list(s.profile_k_grid), scores=scores)


# -- Fig. 8(c) ------------------------------------------------------------------

@dataclass
class Fig8cPoint:
    m: int
    k: int
    n_workers: int
    seconds: float


@dataclass
class Fig8cResult:
    points: List[Fig8cPoint]

    def seconds_for(self, m: int, k: int, n_workers: int) -> Optional[float]:
        for p in self.points:
            if (p.m, p.k, p.n_workers) == (m, k, n_workers):
                return p.seconds
        return None

    def speedup(self, m: int, k: int) -> Optional[float]:
        single = self.seconds_for(m, k, 1)
        multi = self.seconds_for(m, k, 4)
        if single is None or multi is None or multi == 0:
            return None
        return single / multi

    def render(self) -> str:
        rows = [(p.m, p.k, p.n_workers, round(p.seconds, 3))
                for p in self.points]
        return format_table(
            rows,
            headers=("m", "k", "workers", "seconds / iteration"),
            title="Fig. 8(c): secure k-means single-iteration time",
        )


def _time_one_iteration(
    n_users: int, m: int, k: int, n_workers: int, value_bound: int = 100,
    seed: int = 3,
) -> float:
    rng = random.Random(seed)
    group = TEST_GROUP
    with KMeansCoordinator(group, m=m, value_bound=value_bound,
                           rng=rng, n_workers=n_workers) as coordinator, \
            KMeansAggregator(group, coordinator, rng=rng,
                             n_workers=n_workers) as aggregator:
        points = {}
        for i in range(n_users):
            point = [rng.randint(0, value_bound) if rng.random() < 0.3 else 0
                     for _ in range(m)]
            points[f"u{i}"] = point
            client = ProfileClient(f"u{i}", point, value_bound)
            aggregator.submit(
                f"u{i}",
                client.encrypt_profile(coordinator.scheme,
                                       coordinator.public_keys, rng),
            )
        centroids = [points[f"u{i % n_users}"] for i in range(k)]
        coordinator.set_centroids(centroids)
        started = time.perf_counter()
        aggregator.assign_all()
        for cluster, (aggregate, card) in aggregator.aggregate_clusters().items():
            coordinator.update_centroid(cluster, aggregate, card)
        return time.perf_counter() - started


def run_fig8c(scale: str = "default", repeats: int = 2) -> Fig8cResult:
    """Time every (m, k, workers) configuration.

    Each point keeps the *minimum* over ``repeats`` runs — wall-clock
    timing on a shared machine is right-skewed by interference, and the
    minimum is the standard robust estimator for that.
    """
    s = registry.scale(scale)
    if scale == "test":
        repeats = 1
    points = []
    for m in s.kmeans_m_values:
        for k in s.kmeans_k_grid:
            for n_workers in (1, 4):
                seconds = min(
                    _time_one_iteration(
                        n_users=s.kmeans_users, m=m, k=k,
                        n_workers=n_workers, seed=3 + r,
                    )
                    for r in range(max(1, repeats))
                )
                points.append(Fig8cPoint(m=m, k=k, n_workers=n_workers,
                                         seconds=seconds))
    return Fig8cResult(points=points)
