"""Table 1 — System Performance Analysis (old vs new back-end).

Paper values: old version ≈2 min/task at ~5 tasks (3600/day) degrading
to ≈5 min at ~10 tasks (2880/day); new version ≈1 min at ~5 tasks
(7200/day), ≈1.5 min at ~10 (9600/day), and 38400/day with 3 clients
over 4 servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.reports import format_table
from repro.workloads.perfmodel import PerfRow, run_table1

PAPER_ROWS = (
    ("old", 1, 1, 5, 2.0, 3600),
    ("old", 2, 1, 10, 5.0, 2880),
    ("new", 1, 1, 5, 1.0, 7200),
    ("new", 2, 1, 10, 1.5, 9600),
    ("new", 3, 4, 10, 1.5, 38400),
)


@dataclass
class Table1Result:
    rows: List[PerfRow]

    def render(self) -> str:
        data = [
            (
                "Old Version" if r.version == "old" else "New Version",
                r.n_clients,
                r.n_servers,
                round(r.avg_parallel_tasks, 1),
                round(r.response_minutes, 2),
                int(round(r.max_daily_requests)),
            )
            for r in self.rows
        ]
        return format_table(
            data,
            headers=("Version", "# Clients", "# Servers", "# Tasks",
                     "Response Time Per Task (min)", "Max Daily Requests"),
            title="Table 1: System Performance Analysis",
        )


def run(scale: str = "default", sim_minutes: float = 180.0) -> Table1Result:
    if scale == "test":
        sim_minutes = 45.0
    return Table1Result(rows=run_table1(sim_minutes=sim_minutes))
