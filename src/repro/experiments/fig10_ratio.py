"""Fig. 10 — max/min price ratio vs the product's minimum price.

Paper shape: cheap-to-mid products (€5–€1000) reach ratios up to ×2.5;
€1k–€10k products up to ×1.7; €10k–€100k products stay below ×1.3 —
relative differences *shrink* as products get more expensive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.pricediff import ratio_vs_min_price
from repro.analysis.reports import format_table
from repro.experiments import registry

PRICE_BANDS: Tuple[Tuple[float, float], ...] = (
    (1.0, 1_000.0),
    (1_000.0, 10_000.0),
    (10_000.0, 100_000.0),
)


@dataclass
class Fig10Result:
    points: List[Tuple[float, float]]  # (min price €, max/min ratio)

    def max_ratio_in_band(self, lo: float, hi: float) -> float:
        ratios = [r for p, r in self.points if lo <= p < hi]
        return max(ratios) if ratios else 1.0

    def render(self) -> str:
        rows = [
            (
                f"€{int(lo):,}–€{int(hi):,}",
                sum(1 for p, _ in self.points if lo <= p < hi),
                round(self.max_ratio_in_band(lo, hi), 2),
            )
            for lo, hi in PRICE_BANDS
        ]
        return format_table(
            rows,
            headers=("Price band (min price)", "Products", "Max ratio"),
            title="Fig. 10: max/min ratio vs minimum price (band summary)",
        )


def run(scale: str = "default") -> Fig10Result:
    dataset = registry.live_dataset(scale)
    return Fig10Result(points=ratio_vs_min_price(dataset.results))
