"""Figs. 14–15 — temporal price trends for jcpenney.com and chegg.com.

Per-product daily box plots over 20 days with the regression line on
the daily maximum.  Paper shape: jcpenney products drift down through
successive small drops with a few large jumps; chegg prices drift more
smoothly but fluctuate more within a day (≈8.3% vs ≈3.7%); summing the
regression deltas over the catalogs gives an overall revenue increase
(≈€452 jcpenney, ≈€225 chegg if every product sold once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.reports import format_table
from repro.analysis.temporal import (
    TemporalTrend,
    daily_series,
    mean_daily_fluctuation,
    revenue_delta,
    trend_for_product,
)
from repro.experiments import registry


@dataclass
class TemporalFigureResult:
    domain: str
    trends: List[TemporalTrend]
    mean_fluctuation: float
    revenue_delta_eur: float

    def directions(self) -> Dict[str, int]:
        out = {"increasing": 0, "decreasing": 0, "flat": 0}
        for trend in self.trends:
            out[trend.direction] += 1
        return out

    def render(self) -> str:
        rows = [
            (
                t.url.rsplit("/", 1)[-1],
                t.direction,
                round(t.slope, 3),
                round(t.daily_boxes[0].median, 2),
                round(t.daily_boxes[-1].median, 2),
            )
            for t in self.trends
        ]
        table = format_table(
            rows,
            headers=("Product", "Trend", "Slope (€/day)", "First-day median",
                     "Last-day median"),
            title=f"Temporal trends for {self.domain}",
        )
        return table + (
            f"\nmean daily fluctuation: {100 * self.mean_fluctuation:.1f}%"
            f"   revenue delta (1 sale/product): €{self.revenue_delta_eur:,.0f}"
        )


@dataclass
class Fig1415Result:
    jcpenney: TemporalFigureResult
    chegg: TemporalFigureResult

    def render(self) -> str:
        return self.jcpenney.render() + "\n\n" + self.chegg.render()


def _figure_for(domain: str, results) -> TemporalFigureResult:
    series = daily_series(results)
    trends = [trend_for_product(url, days) for url, days in series.items()]
    return TemporalFigureResult(
        domain=domain,
        trends=trends,
        mean_fluctuation=mean_daily_fluctuation(series),
        revenue_delta_eur=revenue_delta(trends),
    )


def run(scale: str = "default") -> Fig1415Result:
    data = registry.temporal_data(scale)
    return Fig1415Result(
        jcpenney=_figure_for(
            "jcpenney.com", data.results_by_domain["jcpenney.com"]
        ),
        chegg=_figure_for("chegg.com", data.results_by_domain["chegg.com"]),
    )
