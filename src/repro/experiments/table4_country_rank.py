"""Table 4 — most expensive and cheapest countries.

Paper top rows: expensive = Spain, USA, New Zealand, Portugal, Ireland,
Japan, Czech Republic, Korea, Hong Kong, Canada; cheapest = USA, Spain,
Canada, Brazil, Japan, Czech Republic, New Zealand, Australia,
Singapore, Thailand.  (The two lists overlap: a country can be the most
expensive for some products and the cheapest for others.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.pricediff import country_extremes
from repro.analysis.reports import format_table
from repro.experiments import registry


@dataclass
class Table4Result:
    expensive: List[Tuple[str, int]]
    cheapest: List[Tuple[str, int]]

    def render(self) -> str:
        rows = []
        for i in range(max(len(self.expensive), len(self.cheapest))):
            exp = self.expensive[i] if i < len(self.expensive) else ("", "")
            chp = self.cheapest[i] if i < len(self.cheapest) else ("", "")
            rows.append((i + 1, exp[0], exp[1], chp[0], chp[1]))
        return format_table(
            rows,
            headers=("Rank", "Expensive", "# Products", "Cheapest", "# Products"),
            title="Table 4: most expensive / cheapest countries",
        )

    def overlap(self) -> set:
        """Countries appearing in both lists (the paper notes they can)."""
        return {c for c, _ in self.expensive} & {c for c, _ in self.cheapest}


def run(scale: str = "default", top: int = 10) -> Table4Result:
    dataset = registry.live_dataset(scale)
    expensive, cheapest = country_extremes(dataset.results)
    return Table4Result(
        expensive=expensive.most_common(top),
        cheapest=cheapest.most_common(top),
    )
