"""Fig. 9 — live-dataset domains with price differences.

Top panel: requests per domain where a price difference occurred;
bottom panel: the distribution (box stats) of the normalized price
difference per domain.  Paper shape: several domains with medians in
the 20–30% band (digitalrev, luisaviaroma, overstock, steampowered,
suitsupply), a couple near 40% (abercrombie, jcpenney); 76 of 1994
checked domains show at least one difference (≈3.8%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.pricediff import (
    DomainDiffStats,
    domain_diff_stats,
    domains_with_difference,
)
from repro.analysis.reports import format_table
from repro.experiments import registry


@dataclass
class Fig9Result:
    stats: List[DomainDiffStats]
    n_domains_checked: int
    n_domains_with_difference: int

    @property
    def diff_fraction(self) -> float:
        if self.n_domains_checked == 0:
            return 0.0
        return self.n_domains_with_difference / self.n_domains_checked

    def median_spread(self, domain: str) -> float:
        for s in self.stats:
            if s.domain == domain:
                return s.spread_stats.median
        raise KeyError(domain)

    def render(self) -> str:
        rows = [
            (
                s.domain,
                s.n_requests,
                s.n_with_difference,
                f"{100 * s.spread_stats.median:.1f}%",
                f"{100 * s.spread_stats.q1:.1f}%",
                f"{100 * s.spread_stats.q3:.1f}%",
                f"{100 * s.spread_stats.maximum:.1f}%",
            )
            for s in self.stats
        ]
        table = format_table(
            rows,
            headers=("Domain", "Requests", "With diff", "Median", "Q1",
                     "Q3", "Max"),
            title="Fig. 9: live-dataset domains with price differences",
        )
        return table + (
            f"\n{self.n_domains_with_difference} of "
            f"{self.n_domains_checked} checked domains "
            f"({100 * self.diff_fraction:.1f}%) showed a difference"
        )


def run(scale: str = "default", min_diff_requests: int = 2) -> Fig9Result:
    dataset = registry.live_dataset(scale)
    if scale == "test":
        min_diff_requests = 1
    stats = domain_diff_stats(dataset.results,
                              min_diff_requests=min_diff_requests)
    return Fig9Result(
        stats=stats,
        n_domains_checked=dataset.n_domains_checked,
        n_domains_with_difference=len(domains_with_difference(dataset.results)),
    )
