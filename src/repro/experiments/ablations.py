"""Ablations of the design choices DESIGN.md calls out.

1. **Dispatch policy** — the paper rejects round robin because it
   "would introduce long pending queues to Measurement servers with
   lower specifications" (Sect. 3.4).  We run the queueing model over a
   heterogeneous fleet under both policies.
2. **Doppelgangers on/off** — how much of a PPC user's server-side
   profile gets polluted by tunneled visits with and without the
   doppelganger budget (Sect. 3.6.2).
3. **Secure vs plaintext k-means** — same clustering outcome, measured
   cost of privacy (Sect. 3.8).
4. **DiffStorage** — storage saved by keeping one full page per job and
   diffs for the remaining ~33 proxy responses (App. 10.5).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.analysis.reports import format_table
from repro.crypto.group import TEST_GROUP
from repro.crypto.secure_kmeans import run_secure_kmeans
from repro.experiments import registry
from repro.profiles.kmeans import lloyd_kmeans
from repro.workloads.perfmodel import PerfRow, PerformanceModel


# -- 1. dispatch policy -------------------------------------------------------

@dataclass
class DispatchAblationResult:
    least_jobs: PerfRow
    round_robin: PerfRow

    def improvement(self) -> float:
        """Response-time advantage of least-jobs over round robin."""
        return self.round_robin.response_minutes / self.least_jobs.response_minutes

    def render(self) -> str:
        rows = [
            ("least_jobs", round(self.least_jobs.response_minutes, 2),
             int(self.least_jobs.max_daily_requests)),
            ("round_robin", round(self.round_robin.response_minutes, 2),
             int(self.round_robin.max_daily_requests)),
        ]
        return format_table(
            rows,
            headers=("Policy", "Response (min)", "Max daily requests"),
            title="Ablation: dispatch policy over heterogeneous servers",
        )


def run_dispatch_ablation(
    scale: str = "default", sim_minutes: float = 120.0
) -> DispatchAblationResult:
    if scale == "test":
        sim_minutes = 45.0
    speeds = [1.0, 1.0, 2.5, 3.0]  # two strong and two weak machines
    rows = {}
    for policy in ("least_jobs", "round_robin"):
        model = PerformanceModel(
            "new", n_clients=3, n_servers=4, streams_per_client=8,
            seed=17, policy=policy, server_speed_factors=speeds,
        )
        rows[policy] = model.run(sim_minutes=sim_minutes)
    return DispatchAblationResult(
        least_jobs=rows["least_jobs"], round_robin=rows["round_robin"]
    )


# -- 2. doppelgangers on/off ---------------------------------------------------

@dataclass
class DoppelgangerAblationResult:
    tunneled_requests: int
    polluting_visits_without: int
    polluting_visits_with: int

    def pollution_reduction(self) -> float:
        if self.polluting_visits_without == 0:
            return 0.0
        return 1.0 - self.polluting_visits_with / self.polluting_visits_without

    def render(self) -> str:
        rows = [
            ("without doppelgangers", self.polluting_visits_without),
            ("with doppelgangers", self.polluting_visits_with),
        ]
        return format_table(
            rows,
            headers=("Configuration",
                     f"Polluting visits / {self.tunneled_requests} tunneled"),
            title="Ablation: server-side profile pollution",
        )


def _pollution_run(use_doppelgangers: bool, n_tunneled: int, seed: int) -> int:
    """Count tunneled visits that landed on the real user's session."""
    from repro.core.sheriff import PriceSheriff, SheriffWorld
    from repro.web.catalog import make_catalog
    from repro.web.internet import ContentSite
    from repro.web.pricing import UniformPricing
    from repro.web.store import EStore

    world = SheriffWorld.create(seed=seed)
    catalog = make_catalog("shop.example", size=12, rng=random.Random(1))
    store = EStore(
        domain="shop.example", country_code="ES", catalog=catalog,
        pricing=UniformPricing(), geodb=world.geodb, rates=world.rates,
    )
    world.internet.register(store)
    world.internet.register(ContentSite("news.example"))
    sheriff = PriceSheriff(world, n_measurement_servers=1,
                           ipc_sites=(("ES", "Madrid", 1.0),))
    browser = world.make_browser("ES", "Madrid")
    addon = sheriff.install_addon(browser)
    # the user shops organically: 4 product views → budget of exactly 1
    for product in catalog.products[:4]:
        browser.visit(store.product_url(product.product_id))
    browser.visit("http://news.example/a")
    sid = browser.cookies.value("shop.example", "sid")
    organic_visits = sum(store.visits_for(sid).values())

    if use_doppelgangers:
        sheriff.run_doppelganger_clustering(
            ["news.example", "shop.example"], k=1, max_iterations=2,
        )

    handler = addon.peer_handler
    for i in range(n_tunneled):
        product = catalog.products[(4 + i) % len(catalog)]
        handler.serve_remote_request(store.product_url(product.product_id))
    return sum(store.visits_for(sid).values()) - organic_visits


def run_doppelganger_ablation(
    scale: str = "default", n_tunneled: int = 8
) -> DoppelgangerAblationResult:
    without = _pollution_run(use_doppelgangers=False, n_tunneled=n_tunneled,
                             seed=51)
    with_dopp = _pollution_run(use_doppelgangers=True, n_tunneled=n_tunneled,
                               seed=51)
    return DoppelgangerAblationResult(
        tunneled_requests=n_tunneled,
        polluting_visits_without=without,
        polluting_visits_with=with_dopp,
    )


# -- 3. secure vs plaintext k-means ---------------------------------------------

@dataclass
class SecureKMeansAblationResult:
    n_users: int
    m: int
    k: int
    secure_seconds: float
    plaintext_seconds: float
    identical_output: bool

    def overhead(self) -> float:
        if self.plaintext_seconds == 0:
            return float("inf")
        return self.secure_seconds / self.plaintext_seconds

    def render(self) -> str:
        rows = [
            ("plaintext", round(self.plaintext_seconds, 4)),
            ("privacy-preserving", round(self.secure_seconds, 4)),
        ]
        table = format_table(
            rows, headers=("Variant", "seconds"),
            title=(
                f"Ablation: cost of privacy (n={self.n_users}, m={self.m}, "
                f"k={self.k})"
            ),
        )
        return table + f"\nidentical clustering output: {self.identical_output}"


def run_secure_kmeans_ablation(scale: str = "default") -> SecureKMeansAblationResult:
    s = registry.scale(scale)
    n_users = min(s.kmeans_users, 40)
    m, k = 20, 4
    rng = random.Random(9)
    points = {
        f"u{i}": [rng.randint(0, 50) if rng.random() < 0.4 else 0
                  for _ in range(m)]
        for i in range(n_users)
    }
    initial = [points[f"u{i}"] for i in range(k)]

    started = time.perf_counter()
    secure = run_secure_kmeans(
        points, k=k, value_bound=50, group=TEST_GROUP,
        rng=random.Random(1), initial_centroids=initial,
        max_iterations=5, halt_threshold=0.0,
    )
    secure_seconds = time.perf_counter() - started

    started = time.perf_counter()
    plain = lloyd_kmeans(
        points, k=k, initial_centroids=initial,
        max_iterations=5, halt_threshold=0.0, quantize=True,
    )
    plaintext_seconds = time.perf_counter() - started

    identical = (
        secure.assignments == plain.assignments
        and secure.centroids == [[int(v) for v in c] for c in plain.centroids]
    )
    return SecureKMeansAblationResult(
        n_users=n_users, m=m, k=k,
        secure_seconds=secure_seconds,
        plaintext_seconds=plaintext_seconds,
        identical_output=identical,
    )


# -- 4. DiffStorage ----------------------------------------------------------------

@dataclass
class DiffStorageAblationResult:
    stored_chars: int
    naive_chars: int

    def savings(self) -> float:
        if self.naive_chars == 0:
            return 0.0
        return 1.0 - self.stored_chars / self.naive_chars

    def render(self) -> str:
        rows = [
            ("store every page verbatim", self.naive_chars),
            ("DiffStorage", self.stored_chars),
        ]
        table = format_table(
            rows, headers=("Strategy", "Characters stored"),
            title="Ablation: DiffStorage savings over the live dataset",
        )
        return table + f"\nsavings: {100 * self.savings():.1f}%"


def run_diffstorage_ablation(scale: str = "default") -> DiffStorageAblationResult:
    dataset = registry.live_dataset(scale)
    diffstore = dataset.sheriff.diffstore
    return DiffStorageAblationResult(
        stored_chars=diffstore.stored_chars(),
        naive_chars=diffstore.naive_chars_seen,
    )
