"""Table 5 — percentage of requests with an in-country price difference.

Paper: jcpenney.com has the highest share in all four countries (35–67%),
chegg.com peaks in Spain (≈39%) and is exactly 0% in France, amazon.com
stays below 14% everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.pricediff import within_country_percentages
from repro.analysis.reports import format_table
from repro.experiments import registry

PAPER_TABLE5 = {
    "chegg.com": {"ES": 38.98, "FR": 0.0, "GB": 15.44, "DE": 2.45},
    "jcpenney.com": {"ES": 58.62, "FR": 67.26, "GB": 57.87, "DE": 34.72},
    "amazon.com": {"ES": 6.84, "FR": 13.27, "GB": 8.79, "DE": 7.50},
}

COUNTRIES = ("ES", "FR", "GB", "DE")


@dataclass
class Table5Result:
    percentages: Dict[str, Dict[str, float]]

    def value(self, domain: str, country: str) -> float:
        return self.percentages.get(domain, {}).get(country, 0.0)

    def render(self) -> str:
        rows = []
        for domain in ("chegg.com", "jcpenney.com", "amazon.com"):
            rows.append(
                (domain,)
                + tuple(f"{self.value(domain, c):.2f}%" for c in COUNTRIES)
            )
        return format_table(
            rows,
            headers=("Domain",) + COUNTRIES,
            title="Table 5: % of requests with in-country price difference",
        )


def run(scale: str = "default") -> Table5Result:
    case = registry.case_study_data(scale)
    percentages: Dict[str, Dict[str, float]] = {}
    for domain, by_country in case.items():
        merged: Dict[str, float] = {}
        for country, results in by_country.items():
            pct = within_country_percentages(results, [country])
            merged[country] = pct.get(domain, {}).get(country, 0.0)
        percentages[domain] = merged
    return Table5Result(percentages=percentages)
