"""Fig. 5 — add-on downloads and active users over time.

The paper's Firefox statistics show a low baseline punctuated by three
major spikes following press articles / the TV documentary, with the
active-user count rising after each spike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.reports import format_table
from repro.workloads.deployment import AdoptionSeries, adoption_series


@dataclass
class Fig5Result:
    series: AdoptionSeries

    def weekly_rows(self) -> List[tuple]:
        rows = []
        for start in range(0, len(self.series.days), 7):
            window = slice(start, start + 7)
            rows.append((
                self.series.days[start],
                round(sum(self.series.daily_downloads[window]), 1),
                round(self.series.active_users[min(
                    start + 6, len(self.series.days) - 1)], 1),
            ))
        return rows

    def render(self) -> str:
        return format_table(
            self.weekly_rows(),
            headers=("Week starting (day)", "Downloads", "Active users"),
            title="Fig. 5: add-on adoption over time (weekly aggregation)",
        )


def run(scale: str = "default") -> Fig5Result:
    # the adoption model is cheap; every scale gets the full window
    return Fig5Result(series=adoption_series(n_days=420))
