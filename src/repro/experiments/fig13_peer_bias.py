"""Fig. 13 — per-peer price-difference distributions (jcpenney.com).

Left panel (France): small (<2%) relative differences, each peer seeing
low and high prices roughly uniformly — no bias, consistent with plain
A/B testing.  Right panel (UK): ~7% differences with some peers
consistently low and others consistently high (the sticky buckets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.pricediff import peer_bias_distributions
from repro.analysis.reports import format_table
from repro.experiments import registry


@dataclass
class Fig13Result:
    france: Dict[str, List[float]]
    uk: Dict[str, List[float]]

    @staticmethod
    def biased_peers(distributions: Dict[str, List[float]],
                     min_obs: int = 3) -> Dict[str, str]:
        """Peers whose observations are consistently high or low."""
        verdicts = {}
        for peer, values in distributions.items():
            if len(values) < min_obs:
                continue
            arr = np.asarray(values)
            if np.all(arr > 0.03):
                verdicts[peer] = "high"
            elif np.all(arr < 0.005):
                verdicts[peer] = "low"
        return verdicts

    @staticmethod
    def max_diff(distributions: Dict[str, List[float]]) -> float:
        values = [v for vs in distributions.values() for v in vs]
        return max(values, default=0.0)

    def render(self) -> str:
        rows = []
        for country, dists in (("FR", self.france), ("GB", self.uk)):
            for peer, values in sorted(dists.items()):
                arr = np.asarray(values) if values else np.asarray([0.0])
                rows.append((
                    country, peer[:14], len(values),
                    f"{100 * float(np.median(arr)):.2f}%",
                    f"{100 * float(arr.max()):.2f}%",
                ))
        return format_table(
            rows,
            headers=("Country", "Peer", "Obs", "Median diff", "Max diff"),
            title="Fig. 13: per-PPC relative price difference (jcpenney.com)",
        )


def run(scale: str = "default") -> Fig13Result:
    case = registry.case_study_data(scale)
    jcp = case["jcpenney.com"]
    return Fig13Result(
        france=peer_bias_distributions(jcp.get("FR", []), "FR"),
        uk=peer_bias_distributions(jcp.get("GB", []), "GB"),
    )
