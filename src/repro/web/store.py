"""The simulated e-commerce retailer.

An :class:`EStore` renders genuine HTML product pages.  Everything the
paper identifies as making price extraction non-trivial is reproduced:

* multiple prices on the same page (a "related products" strip and a
  rotating ad banner that can itself contain a price);
* page content that varies between fetches — ads and the related strip
  are sampled per request, so two proxies never receive byte-identical
  documents;
* store-specific price markup (class name, currency notation, grouping,
  decimals) and store-specific currency behaviour — a store can quote in
  its home currency or geo-localize the currency from the client's IP,
  using its *own* (slightly skewed) converter, one of the benign sources
  of cross-country variation;
* first-party session cookies and embedded third-party trackers;
* server-side state per identified client (pages viewed per product),
  which is exactly the state the doppelganger machinery protects.
"""

from __future__ import annotations

import hashlib
import random
import secrets
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.currency.codes import CURRENCIES
from repro.currency.detect import format_price
from repro.currency.rates import ExchangeRateProvider
from repro.net.geo import GeoDatabase
from repro.web.catalog import Catalog, Product
from repro.web.html import Element, render
from repro.web.pricing import PriceQuote, PricingPolicy, RequestContext, stable_rng

#: price markup classes stores choose from (the $heriff must not assume one)
PRICE_CLASSES = ("price", "product-price", "amount", "sale-price")
PRICE_STYLES = ("symbol", "iso_tight", "iso_space", "custom",
                "symbol_suffix", "continental")


@dataclass
class StoreResponse:
    """What a client receives for one product-page request."""

    url: str
    status: int
    html: str
    set_cookies: Dict[str, str]
    tracker_domains: Tuple[str, ...]
    # Ground-truth oracle fields (never read by the $heriff itself; used
    # by tests and experiment validation):
    quote: Optional[PriceQuote] = None
    displayed_amount: Optional[float] = None
    displayed_currency: Optional[str] = None


class EStore:
    """One retailer domain on the simulated internet."""

    def __init__(
        self,
        domain: str,
        country_code: str,
        catalog: Catalog,
        pricing: PricingPolicy,
        geodb: GeoDatabase,
        rates: ExchangeRateProvider,
        tracker_domains: Sequence[str] = (),
        currency_strategy: str = "local",  # or "geo"
        converter_skew: float = 1.0,
        layout_seed: int = 0,
        display_decimals: Optional[int] = None,
        tracking: str = "cookie",
        blocked_countries: Sequence[str] = (),
        bot_detection: Optional[Tuple[int, float]] = None,
    ) -> None:
        if currency_strategy not in ("local", "geo"):
            raise ValueError(f"unknown currency strategy {currency_strategy!r}")
        if tracking not in ("cookie", "ip", "fingerprint"):
            raise ValueError(f"unknown tracking mode {tracking!r}")
        self.domain = domain
        self.country_code = country_code
        self.catalog = catalog
        self.pricing = pricing
        self._geodb = geodb
        self._rates = rates
        self.tracker_domains = tuple(tracker_domains)
        self.currency_strategy = currency_strategy
        self.converter_skew = converter_skew
        self.display_decimals = display_decimals
        #: how the retailer identifies visitors for server-side state.
        #: ``cookie`` (default) trusts the session cookie — what
        #: doppelgangers shield.  ``ip`` and ``fingerprint`` key the
        #: state on properties a doppelganger cannot mask (the paper's
        #: footnote-2 caveat in Sect. 3.6.2).
        self.tracking = tracking
        #: countries this retailer refuses to serve (the geoblocking
        #: behaviour the watchdog paradigm extends to, Sect. 1)
        self.blocked_countries = frozenset(blocked_countries)
        #: optional ``(max_requests, window_seconds)``: the frequency
        #: threshold of the Sect. 3.2 discussion — "a retailer can
        #: detect any abnormal activity of the IPC by counting the
        #: frequency of the visits from the same IP … then the retailer
        #: may block the IPC request or introduce a CAPTCHA."
        self.bot_detection = bot_detection
        self._ip_hits: Dict[str, List[float]] = {}
        self.captchas_served = 0

        # Deterministic per-store layout/markup choices.
        layout_rng = stable_rng("layout", domain, layout_seed)
        self.price_class = layout_rng.choice(PRICE_CLASSES)
        self.price_style = layout_rng.choice(PRICE_STYLES)
        self._nav_items = layout_rng.randint(3, 6)
        self._related_count_range = (2, 2 + layout_rng.randint(1, 3))
        self._banner_has_price_prob = layout_rng.uniform(0.2, 0.6)

        # Server-side state: client identity → product → visit count.
        self.server_state: Dict[str, Counter] = {}
        self.request_log: List[Tuple[float, str, str]] = []

    # -- currency --------------------------------------------------------
    def display_currency(self, ctx: RequestContext) -> str:
        if self.currency_strategy == "geo":
            try:
                return self._geodb.country(ctx.location.country).currency
            except KeyError:
                pass
        return self._geodb.country(self.country_code).currency

    def displayed_price(self, quote: PriceQuote, ctx: RequestContext) -> Tuple[float, str]:
        """Convert the EUR quote into the currency shown to this client."""
        code = self.display_currency(ctx)
        amount = self._rates.convert(quote.amount_eur, "EUR", code, ctx.time)
        amount *= self.converter_skew
        decimals = (
            self.display_decimals
            if self.display_decimals is not None
            else CURRENCIES[code].decimals
        )
        return round(amount, decimals), code

    # -- server-side state -------------------------------------------------
    def tracking_key(self, ctx: RequestContext) -> str:
        """The identity this retailer keys server-side state on."""
        if self.tracking == "ip":
            return ctx.location.ip
        if self.tracking == "fingerprint":
            # device/browser fingerprint: stable across cookie wipes
            digest = hashlib.sha256(
                f"{ctx.user_agent}|{ctx.location.ip}".encode()
            ).hexdigest()
            return f"fp-{digest[:16]}"
        return ctx.client_key

    def _bot_detected(self, ctx: RequestContext) -> bool:
        """Per-IP frequency check (the anti-measurement countermeasure)."""
        if self.bot_detection is None:
            return False
        max_requests, window = self.bot_detection
        hits = self._ip_hits.setdefault(ctx.location.ip, [])
        hits[:] = [t for t in hits if ctx.time - t < window]
        if len(hits) >= max_requests:
            return True
        hits.append(ctx.time)
        return False

    def record_visit(self, ctx: RequestContext, product_id: str) -> None:
        key = self.tracking_key(ctx)
        self.server_state.setdefault(key, Counter())[product_id] += 1
        self.request_log.append((ctx.time, key, product_id))

    def visits_for(self, client_key: str) -> Counter:
        return Counter(self.server_state.get(client_key, Counter()))

    # -- page rendering ------------------------------------------------------
    def _price_text(self, amount: float, code: str) -> str:
        decimals = (
            self.display_decimals
            if self.display_decimals is not None
            else CURRENCIES[code].decimals
        )
        return format_price(amount, code, style=self.price_style, decimals=decimals)

    def _banner(self, rng: random.Random) -> Element:
        banner = Element("div", {"class": "banner"})
        if rng.random() < self._banner_has_price_prob:
            # An ad that itself contains a price — a decoy for extraction.
            deal = rng.choice(list(self.catalog))
            code = self._geodb.country(self.country_code).currency
            text = self._price_text(round(deal.base_price_eur * 0.8, 2), code)
            banner.append(Element("span", {"class": "ad-copy"}, [f"Deal of the hour: {text}"]))
        else:
            banner.append(Element("span", {"class": "ad-copy"}, [f"ad-{rng.randint(1000, 9999)}"]))
        return banner

    def _related_strip(self, product: Product, ctx: RequestContext, rng: random.Random) -> Element:
        related = Element("div", {"class": "related"})
        others = [p for p in self.catalog if p.product_id != product.product_id]
        lo, hi = self._related_count_range
        count = min(len(others), rng.randint(lo, hi))
        for other in rng.sample(others, count):
            quote = self.pricing.quote(other, ctx)
            amount, code = self.displayed_price(quote, ctx)
            item = Element("div", {"class": "item"})
            item.append(Element("span", {"class": "name"}, [other.name]))
            item.append(Element("span", {"class": self.price_class}, [self._price_text(amount, code)]))
            related.append(item)
        return related

    def render_product_page(
        self, product: Product, ctx: RequestContext
    ) -> Tuple[str, PriceQuote, float, str]:
        """Build the HTML for a product page under this request context."""
        quote = self.pricing.quote(product, ctx)
        amount, code = self.displayed_price(quote, ctx)
        # Per-request variation RNG (ads, related products).
        rng = stable_rng("page", self.domain, product.product_id, ctx.time,
                         ctx.client_key, ctx.request_nonce)

        head = Element("head")
        head.append(Element("title", children=[f"{product.name} — {self.domain}"]))
        head.append(Element("meta", {"charset": "utf-8"}))

        nav = Element("div", {"class": "nav"})
        for i in range(self._nav_items):
            nav.append(Element("a", {"href": f"/cat/{i}"}, [f"Category {i}"]))

        product_div = Element("div", {"class": "product", "id": f"p-{product.product_id}"})
        product_div.append(Element("h1", {"class": "title"}, [product.name]))
        product_div.append(
            Element("img", {"src": f"/img/{product.product_id}.jpg", "alt": product.name})
        )
        product_div.append(
            Element("span", {"class": self.price_class}, [self._price_text(amount, code)])
        )
        product_div.append(
            Element("div", {"class": "description"},
                    [f"{product.name} in category {product.category}."])
        )

        main = Element("div", {"class": "main"})
        main.append(product_div)
        main.append(self._related_strip(product, ctx, rng))

        footer = Element("div", {"class": "footer"})
        footer.append(Element("span", {"class": "copyright"}, [f"© {self.domain}"]))
        for tracker in self.tracker_domains:
            footer.append(Element("img", {"src": f"https://{tracker}/pixel.gif",
                                          "class": "tracker-pixel"}))

        body = Element("body")
        body.extend([Element("div", {"class": "header"},
                             [Element("span", {"class": "logo"}, [self.domain])]),
                     nav, self._banner(rng), main, footer])

        doc = Element("html", children=[head, body])
        return render(doc), quote, amount, code

    # -- the HTTP-ish entry point -------------------------------------------
    def fetch(self, path: str, ctx: RequestContext) -> StoreResponse:
        """Serve a request for ``path`` as seen from ``ctx``."""
        if ctx.location.country in self.blocked_countries:
            return StoreResponse(
                url=f"http://{self.domain}{path}", status=451,
                html=(
                    "<html><head><title>Unavailable</title></head><body>"
                    '<div class="blocked">This content is not available in '
                    "your region.</div></body></html>"
                ),
                set_cookies={}, tracker_domains=(),
            )
        if self._bot_detected(ctx):
            self.captchas_served += 1
            return StoreResponse(
                url=f"http://{self.domain}{path}", status=429,
                html=(
                    "<html><head><title>Are you human?</title></head><body>"
                    '<div class="captcha">Please solve this CAPTCHA to '
                    "continue.</div></body></html>"
                ),
                set_cookies={}, tracker_domains=(),
            )
        set_cookies: Dict[str, str] = {}
        if "sid" not in ctx.first_party_cookies:
            set_cookies["sid"] = secrets.token_hex(8)
        if not path.startswith("/product/"):
            html = render(Element("html", children=[
                Element("head", children=[Element("title", children=[self.domain])]),
                Element("body", children=[Element("div", {"class": "home"}, [self.domain])]),
            ]))
            return StoreResponse(
                url=f"http://{self.domain}{path}", status=200, html=html,
                set_cookies=set_cookies, tracker_domains=self.tracker_domains,
            )
        product = self.catalog.get(path[len("/product/"):])
        if product is None:
            return StoreResponse(
                url=f"http://{self.domain}{path}", status=404,
                html="<html><head><title>404</title></head><body><div>not found</div></body></html>",
                set_cookies=set_cookies, tracker_domains=self.tracker_domains,
            )
        html, quote, amount, code = self.render_product_page(product, ctx)
        self.record_visit(ctx, product.product_id)
        return StoreResponse(
            url=f"http://{self.domain}{path}",
            status=200,
            html=html,
            set_cookies=set_cookies,
            tracker_domains=self.tracker_domains,
            quote=quote,
            displayed_amount=amount,
            displayed_currency=code,
        )

    def product_url(self, product_id: str) -> str:
        return f"http://{self.domain}/product/{product_id}"

    # -- search & steering ---------------------------------------------------
    def search(self, query: str, ctx: RequestContext) -> List[Product]:
        """Rank the catalog for a search query, possibly *steered*.

        Price steering (Sect. 2): "showing different products (or the
        same products in a different order) to distinct users for the
        same search query."  With a steering policy configured (see
        :meth:`enable_steering`), identified high-value visitors get the
        expensive half of the inventory ranked first; everyone else gets
        a price-ascending ranking.
        """
        matching = [
            p for p in self.catalog
            if query.lower() in p.name.lower()
            or query.lower() in p.category.lower()
        ] or list(self.catalog)
        steering = getattr(self, "_steering", None)
        if steering is not None and steering.steers(ctx):
            return sorted(matching, key=lambda p: -p.base_price_eur)
        return sorted(matching, key=lambda p: p.base_price_eur)

    def enable_steering(self, steering: "SteeringPolicy") -> None:
        self._steering = steering


class SteeringPolicy:
    """Decides which visitors get the steered (expensive-first) ranking.

    Mirrors :class:`repro.web.pricing.PdiPdPricing`: the signal is the
    tracker-built browsing profile.
    """

    def __init__(self, ecosystem, trigger_domains: Sequence[str],
                 min_hits: int = 3) -> None:
        self._ecosystem = ecosystem
        self.trigger_domains = tuple(trigger_domains)
        self.min_hits = min_hits

    def steers(self, ctx: RequestContext) -> bool:
        profile = self._ecosystem.profile_across_trackers(ctx.tracker_cookies)
        hits = sum(profile.get(d, 0) for d in self.trigger_domains)
        return hits >= self.min_hits
