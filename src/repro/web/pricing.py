"""Pricing policies that drive the simulated retailers.

Every kind of price variation the paper studies is expressed as a
composable policy:

* :class:`CountryMultiplierPricing` — cross-border, location-based PD
  (simple multiplicative factors per country, which [24] reverse
  engineered and this paper confirms);
* :class:`VatInclusivePricing` — amazon.com's behaviour in Sect. 7.3:
  identified users see destination-country VAT baked into the price, so
  in-country differences land exactly on the VAT scales;
* :class:`ABTestPricing` — randomized price buckets; the ``sticky``
  variant pins a client to a bucket, producing the peers with a constant
  bias towards high/low prices seen on jcpenney.com in the UK (Fig. 13);
* :class:`TemporalDriftPricing` — the slow drifts plus rare large jumps
  of Figs. 14–15;
* :class:`PdiPdPricing` — genuine personal-data-induced discrimination,
  conditioned on the tracker-built browsing profile.  The paper found
  none in the wild; we implement it so the watchdog can be validated
  against a ground-truth discriminator.

All randomness is derived from stable hashes of (salt, product, client,
…) so that simulations are reproducible and, crucially, *simultaneous*
fetches of the same product by different vantage points see a coherent
store state.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.events import SECONDS_PER_DAY
from repro.net.geo import GeoDatabase, Location
from repro.web.catalog import Product
from repro.web.trackers import TrackerEcosystem


@dataclass(frozen=True)
class RequestContext:
    """Everything a retailer can observe about one page request."""

    time: float
    location: Location
    user_agent: str = "Mozilla/5.0"
    first_party_cookies: Dict[str, str] = field(default_factory=dict)
    tracker_cookies: Dict[str, str] = field(default_factory=dict)
    request_nonce: int = 0  # distinguishes repeated fetches at equal time

    @property
    def client_key(self) -> str:
        """The identity a retailer keys its server-side state on.

        Prefers the first-party session cookie; falls back to the IP —
        the same identification channels the paper lists in Sect. 3.6.
        """
        sid = self.first_party_cookies.get("sid")
        return sid if sid is not None else self.location.ip

    @property
    def day(self) -> int:
        return int(self.time // SECONDS_PER_DAY)


@dataclass(frozen=True)
class Adjustment:
    """One multiplicative price adjustment with a label for forensics."""

    label: str
    multiplier: float


@dataclass(frozen=True)
class PriceQuote:
    """Final quoted price with its full adjustment breakdown."""

    product_id: str
    base_eur: float
    amount_eur: float
    adjustments: Tuple[Adjustment, ...]

    def factor(self) -> float:
        return self.amount_eur / self.base_eur if self.base_eur else 1.0


def stable_rng(*keys: object) -> random.Random:
    """A deterministic RNG derived from a hash of the given keys."""
    digest = hashlib.sha256("\x1f".join(repr(k) for k in keys).encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class PricingPolicy:
    """Base class: a policy contributes multiplicative adjustments."""

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        raise NotImplementedError

    def quote(self, product: Product, ctx: RequestContext) -> PriceQuote:
        adjustments = tuple(self.adjustments(product, ctx))
        amount = product.base_price_eur
        for adj in adjustments:
            amount *= adj.multiplier
        return PriceQuote(
            product_id=product.product_id,
            base_eur=product.base_price_eur,
            amount_eur=round(amount, 2),
            adjustments=adjustments,
        )


class UniformPricing(PricingPolicy):
    """Same price for everyone, always (the honest baseline retailer)."""

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        return []


class CountryMultiplierPricing(PricingPolicy):
    """Location-based PD: a fixed multiplier per customer country."""

    def __init__(self, multipliers: Dict[str, float], default: float = 1.0) -> None:
        self.multipliers = dict(multipliers)
        self.default = default

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        factor = self.multipliers.get(ctx.location.country, self.default)
        if factor == 1.0:
            return []
        return [Adjustment(label=f"country:{ctx.location.country}", multiplier=factor)]


class RegionalPricing(PricingPolicy):
    """Country multipliers that vary in strength per product.

    Real retailers do not reprice their whole inventory uniformly: the
    live dataset's per-domain spread *distributions* (Fig. 9, bottom) and
    the distinct per-product extremes of Table 3 both require regional
    factors that differ across products.  For each product this policy
    decides (deterministically) whether regional pricing applies at all
    (``coverage``) and scales the country multiplier's distance from 1
    by a per-product factor drawn from ``magnitude_range``.
    """

    def __init__(
        self,
        country_multipliers: Dict[str, float],
        coverage: float = 0.8,
        magnitude_range: Tuple[float, float] = (0.3, 1.0),
        default: float = 1.0,
        salt: str = "regional",
    ) -> None:
        if not 0 < coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")
        self.country_multipliers = dict(country_multipliers)
        self.coverage = coverage
        self.magnitude_range = magnitude_range
        self.default = default
        self.salt = salt

    def factor_for(self, product: Product, country: str) -> float:
        multiplier = self.country_multipliers.get(country, self.default)
        if multiplier == 1.0:
            return 1.0
        rng = stable_rng(self.salt, product.product_id)
        if rng.random() > self.coverage:
            return 1.0  # this product is priced globally
        magnitude = rng.uniform(*self.magnitude_range)
        return 1.0 + (multiplier - 1.0) * magnitude

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        factor = self.factor_for(product, ctx.location.country)
        if factor == 1.0:
            return []
        return [
            Adjustment(
                label=f"regional:{ctx.location.country}:{factor:.3f}",
                multiplier=factor,
            )
        ]


class ProductCountryJitterPricing(PricingPolicy):
    """Per-(product, country) deterministic multiplier jitter.

    Table 3 shows *different* extreme ratios for distinct products of the
    same retailer (e.g. ×2.32 and ×2.18 on luisaviaroma.com), so
    cross-border factors cannot be purely per-country.  This policy adds
    a stable multiplier drawn once per (product, country) pair in
    ``[1 − spread, 1 + spread]`` — composing it with
    :class:`CountryMultiplierPricing` yields product-dependent country
    ratios while staying time- and client-invariant.
    """

    def __init__(self, spread: float = 0.1, salt: str = "pcjitter") -> None:
        if not 0 <= spread < 1:
            raise ValueError("spread must be in [0, 1)")
        self.spread = spread
        self.salt = salt

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        if self.spread == 0:
            return []
        rng = stable_rng(self.salt, product.product_id, ctx.location.country)
        factor = 1.0 + rng.uniform(-self.spread, self.spread)
        return [Adjustment(label=f"pc-jitter:{ctx.location.country}", multiplier=factor)]


class PerCountryABTestPricing(PricingPolicy):
    """Country-specific A/B configurations.

    Sect. 7.3 observes that the *same* retailer A/B tests differently per
    market: jcpenney.com scatters prices across multiple values in Spain,
    two values in France, exactly one 7 % gap in the UK; chegg.com runs
    no test at all in France.  Each country gets its own
    :class:`ABTestPricing` (or none).
    """

    def __init__(
        self,
        per_country: Dict[str, ABTestPricing],
        default: Optional[ABTestPricing] = None,
    ) -> None:
        self.per_country = dict(per_country)
        self.default = default

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        policy = self.per_country.get(ctx.location.country, self.default)
        if policy is None:
            return []
        return policy.adjustments(product, ctx)


class VatInclusivePricing(PricingPolicy):
    """Destination VAT folded into the displayed price for known users.

    When the retailer can pin down the delivery country (the user is
    logged in — modelled by an ``account`` first-party cookie), the price
    includes that country's VAT for the product's category; guests see
    the base price.  Within one country this produces price differences
    that sit exactly on the VAT scale — the amazon.com signature of
    Sect. 7.3.
    """

    #: categories billed at a reduced rate where one exists.
    REDUCED_CATEGORIES = frozenset({"books", "cosmetics", "games"})

    def __init__(self, geodb: GeoDatabase, coverage: float = 1.0,
                 salt: str = "vat") -> None:
        if not 0 < coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")
        self._geodb = geodb
        #: fraction of the catalog sold-and-shipped by the retailer
        #: itself — marketplace listings show the base price regardless
        #: of who is looking (why amazon.com differences are rare,
        #: Table 5: below 14% of requests)
        self.coverage = coverage
        self.salt = salt

    def applies_to(self, product: Product) -> bool:
        if self.coverage >= 1.0:
            return True
        return stable_rng(self.salt, product.product_id).random() < self.coverage

    def rate_for(self, product: Product, country_code: str) -> float:
        country = self._geodb.country(country_code)
        rates = country.vat_rates
        if product.category in self.REDUCED_CATEGORIES and len(rates) > 1:
            return rates[1]
        return rates[0]

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        if "account" not in ctx.first_party_cookies:
            return []
        if not self.applies_to(product):
            return []
        rate = self.rate_for(product, ctx.location.country)
        if rate == 0.0:
            return []
        return [Adjustment(label=f"vat:{ctx.location.country}:{rate:.3f}", multiplier=1.0 + rate)]


class ABTestPricing(PricingPolicy):
    """A/B price testing: a random bucket picks a price delta.

    ``sticky=False`` draws a fresh bucket per request (the France-style
    uniform scatter of Fig. 13); ``sticky=True`` buckets by client
    identity, making some peers consistently cheap or expensive (the UK
    pattern).
    """

    def __init__(
        self,
        deltas: Sequence[float] = (-0.02, -0.01, 0.0, 0.01, 0.02),
        sticky: bool = False,
        salt: str = "ab",
    ) -> None:
        if not deltas:
            raise ValueError("ABTestPricing needs at least one delta")
        self.deltas = tuple(deltas)
        self.sticky = sticky
        self.salt = salt

    def bucket_for(self, product: Product, ctx: RequestContext) -> float:
        if self.sticky:
            rng = stable_rng(self.salt, ctx.client_key)
        else:
            rng = stable_rng(
                self.salt, product.product_id, ctx.client_key, ctx.time, ctx.request_nonce
            )
        return rng.choice(self.deltas)

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        delta = self.bucket_for(product, ctx)
        if delta == 0.0:
            return []
        return [Adjustment(label=f"ab:{delta:+.3f}", multiplier=1.0 + delta)]


class TemporalDriftPricing(PricingPolicy):
    """Day-granularity price evolution: small drifts plus rare jumps.

    Matches the Sect. 7.5 observation: "the majority of the products of a
    retailer become cheaper through successive small price drops over 20
    days. At the same time, we observed a series of large price jumps for
    a few products."  The factor series is a deterministic function of
    (salt, product), so every vantage point fetching on the same day sees
    the same underlying price.
    """

    def __init__(
        self,
        daily_sigma: float = 0.01,
        trend: float = -0.003,
        jump_prob: float = 0.01,
        jump_scale: float = 0.25,
        updates_per_day: int = 1,
        reversion: float = 0.0,
        salt: str = "drift",
    ) -> None:
        self.daily_sigma = daily_sigma
        self.trend = trend
        self.jump_prob = jump_prob
        self.jump_scale = jump_scale
        self.updates_per_day = max(1, updates_per_day)
        # mean reversion keeps year-long simulations bounded: each step
        # pulls log(factor) back toward 0 with this strength, so a drift
        # calibrated on a 20-day window does not compound into absurd
        # prices over the 13-month deployment.
        self.reversion = reversion
        self.salt = salt
        self._cache: Dict[Tuple[str, int], float] = {}

    def factor_at(self, product_id: str, tick: int) -> float:
        """Cumulative price factor after ``tick`` intra-day updates."""
        if tick <= 0:
            return 1.0
        key = (product_id, tick)
        if key in self._cache:
            return self._cache[key]
        # fill the series iteratively (a year of ticks would overflow the
        # recursion limit)
        start = tick - 1
        while start > 0 and (product_id, start) not in self._cache:
            start -= 1
        for t in range(start + 1, tick):
            self._step(product_id, t)
        return self._step(product_id, tick)

    def _step(self, product_id: str, tick: int) -> float:
        """Extend the cached factor series from tick-1 to tick."""
        prev = self._cache.get((product_id, tick - 1), 1.0)
        rng = stable_rng(self.salt, product_id, tick)
        step = 1.0 + self.trend / self.updates_per_day + rng.gauss(
            0.0, self.daily_sigma / math.sqrt(self.updates_per_day)
        )
        if self.reversion > 0.0 and prev > 0.0:
            step *= math.exp(-self.reversion * math.log(prev)
                             / self.updates_per_day)
        if rng.random() < self.jump_prob / self.updates_per_day:
            jump = 1.0 + rng.uniform(0.5, 1.0) * self.jump_scale
            if rng.random() < 0.3:  # a minority of jumps go down
                jump = 1.0 / jump
            step *= jump
        factor = max(0.05, prev * step)
        self._cache[(product_id, tick)] = factor
        return factor

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        tick = int(ctx.time / SECONDS_PER_DAY * self.updates_per_day)
        factor = self.factor_at(product.product_id, tick)
        if factor == 1.0:
            return []
        return [Adjustment(label=f"drift:day{ctx.day}", multiplier=factor)]


class PdiPdPricing(PricingPolicy):
    """Personal-data-induced PD via a colluding tracker's profiles.

    The retailer queries the tracker ecosystem for the browsing profile
    attached to the visitor's tracker cookies; if the profile shows
    enough visits to ``trigger_domains`` (e.g. luxury or affluent-area
    sites), the price is marked up.  This is the discrimination channel
    hypothesized in Sect. 2.2 requirement 3.
    """

    def __init__(
        self,
        ecosystem: TrackerEcosystem,
        trigger_domains: Sequence[str],
        markup: float = 0.10,
        min_hits: int = 3,
    ) -> None:
        self._ecosystem = ecosystem
        self.trigger_domains = tuple(trigger_domains)
        self.markup = markup
        self.min_hits = min_hits

    def triggered(self, ctx: RequestContext) -> bool:
        profile = self._ecosystem.profile_across_trackers(ctx.tracker_cookies)
        hits = sum(profile.get(d, 0) for d in self.trigger_domains)
        return hits >= self.min_hits

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        if not self.triggered(ctx):
            return []
        return [Adjustment(label=f"pdi-pd:+{self.markup:.2f}", multiplier=1.0 + self.markup)]


class CompositePricing(PricingPolicy):
    """Chain several policies; adjustments multiply in order."""

    def __init__(self, policies: Sequence[PricingPolicy]) -> None:
        self.policies = list(policies)

    def adjustments(self, product: Product, ctx: RequestContext) -> List[Adjustment]:
        out: List[Adjustment] = []
        for policy in self.policies:
            out.extend(policy.adjustments(product, ctx))
        return out
