"""Third-party tracker ecosystem and server-side profile building.

Requirement 2 of Sect. 2.2: the system must "detect the presence of
third party trackers and investigate whether it correlates with observed
price variations."  The simulated trackers behave like the real
ecosystem seen from a browser:

* a site embeds some set of tracker domains;
* when the page loads, each tracker receives a request carrying the
  browser's third-party cookie for that tracker (set on first contact);
* server-side, the tracker accumulates a profile — the multiset of
  first-party domains on which it has observed that cookie.

A PDI-PD pricing policy can buy access to a tracker's profiles and
condition prices on them; the $heriff's job is to catch that.
"""

from __future__ import annotations

import secrets
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass
class TrackerVisit:
    """One observation logged by a tracker."""

    cookie: str
    first_party: str
    time: float


class Tracker:
    """A single third-party tracker domain."""

    def __init__(self, domain: str) -> None:
        self.domain = domain
        self._profiles: Dict[str, Counter] = {}
        self.visits: List[TrackerVisit] = []

    def observe(self, cookie: Optional[str], first_party: str, time: float = 0.0) -> str:
        """Record a page view; returns the (possibly fresh) cookie value."""
        if cookie is None:
            cookie = secrets.token_hex(8)
        self._profiles.setdefault(cookie, Counter())[first_party] += 1
        self.visits.append(TrackerVisit(cookie=cookie, first_party=first_party, time=time))
        return cookie

    def profile(self, cookie: str) -> Counter:
        """The domain-visit profile the tracker holds for a cookie."""
        return Counter(self._profiles.get(cookie, Counter()))

    def known_cookies(self) -> List[str]:
        return list(self._profiles)

    def forget(self, cookie: str) -> None:
        self._profiles.pop(cookie, None)


class TrackerEcosystem:
    """The set of trackers active on the simulated internet."""

    #: Default tracker population; `fingerprint.net` marks the rare
    #: fingerprinting-capable tracker the paper's footnote discusses.
    DEFAULT_DOMAINS = (
        "doubleclick.net",
        "google-analytics.com",
        "facebook.net",
        "criteo.com",
        "addthis.com",
        "scorecardresearch.com",
        "fingerprint.net",
    )

    def __init__(self, domains: Sequence[str] = DEFAULT_DOMAINS) -> None:
        self._trackers: Dict[str, Tracker] = {d: Tracker(d) for d in domains}

    def __contains__(self, domain: str) -> bool:
        return domain in self._trackers

    def get(self, domain: str) -> Tracker:
        try:
            return self._trackers[domain]
        except KeyError:
            raise KeyError(f"unknown tracker domain {domain!r}") from None

    def domains(self) -> List[str]:
        return list(self._trackers)

    def trackers(self) -> List[Tracker]:
        return list(self._trackers.values())

    def profile_across_trackers(self, cookies: Dict[str, str]) -> Counter:
        """Union profile for a browser, given its per-tracker cookies.

        This is what a colluding set of trackers (or a data broker) could
        assemble — the information channel a PDI-PD retailer would use.
        """
        merged: Counter = Counter()
        for domain, cookie in cookies.items():
            if domain in self._trackers:
                merged.update(self._trackers[domain].profile(cookie))
        return merged
