"""A small HTML document model, serializer, and parser.

The Tags Path machinery (Sect. 3.3) needs to treat pages as tag trees:
the add-on walks the rendered document bottom-up to record the path to
the selected price element, and the Measurement server re-walks pages
fetched by proxies to extract the price.  Stores build
:class:`Element` trees and serialize them; the Measurement server parses
the HTML text back — so the parser and serializer must round-trip.

The model is deliberately minimal (no entities, no comments inside
content, no CDATA) because the simulated stores only emit what it
supports; the parser is still defensive because remote pages differ
between fetches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

#: Tags that never take children or a closing tag.
VOID_TAGS = frozenset({"img", "br", "meta", "link", "input", "hr"})

Node = Union["Element", str]


class HTMLParseError(ValueError):
    """Raised when a document cannot be parsed into a tag tree."""


@dataclass
class Element:
    """One HTML element: a tag, its attributes, and child nodes."""

    tag: str
    attrs: Dict[str, str] = field(default_factory=dict)
    children: List[Node] = field(default_factory=list)

    # -- construction helpers -------------------------------------------
    def append(self, child: Node) -> "Element":
        self.children.append(child)
        return self

    def extend(self, children: List[Node]) -> "Element":
        self.children.extend(children)
        return self

    # -- queries ----------------------------------------------------------
    @property
    def classes(self) -> List[str]:
        return self.attrs.get("class", "").split()

    def has_class(self, name: str) -> bool:
        return name in self.classes

    def text(self) -> str:
        """Concatenated text of this subtree."""
        return text_of(self)

    def signature(self) -> str:
        """A layout-identity string: tag plus class attribute.

        Two elements with the same signature play the same structural
        role across page variants; this is what Tags Path entries match
        on.
        """
        cls = self.attrs.get("class", "")
        return f"{self.tag}.{cls}" if cls else self.tag


def _render_attrs(attrs: Dict[str, str]) -> str:
    if not attrs:
        return ""
    parts = [f'{key}="{value}"' for key, value in attrs.items()]
    return " " + " ".join(parts)


def render(node: Node, indent: int = 0) -> str:
    """Serialize a node tree to HTML text (with doctype at the root)."""
    text = _render_node(node, indent)
    if isinstance(node, Element) and node.tag == "html" and indent == 0:
        return "<!DOCTYPE html>\n" + text
    return text


def _render_node(node: Node, indent: int) -> str:
    pad = "  " * indent
    if isinstance(node, str):
        return f"{pad}{node}"
    open_tag = f"{pad}<{node.tag}{_render_attrs(node.attrs)}>"
    if node.tag in VOID_TAGS:
        return open_tag
    if not node.children:
        return f"{open_tag}</{node.tag}>"
    if len(node.children) == 1 and isinstance(node.children[0], str):
        return f"{open_tag}{node.children[0]}</{node.tag}>"
    inner = "\n".join(_render_node(child, indent + 1) for child in node.children)
    return f"{open_tag}\n{inner}\n{pad}</{node.tag}>"


_TOKEN_RE = re.compile(r"<[^>]*>|[^<]+")
_TAG_RE = re.compile(r"^<\s*(/)?\s*([a-zA-Z][a-zA-Z0-9-]*)((?:\s+[^>]*?)?)\s*(/)?\s*>$")
_ATTR_RE = re.compile(r'([a-zA-Z][a-zA-Z0-9_:-]*)\s*=\s*"([^"]*)"')


class ParseObserver:
    """Receives enter/exit events while :func:`parse` builds the tree.

    ``enter`` fires at each element's open tag (pre-order, the same
    order :func:`iter_elements` yields); ``exit`` fires at its closing
    tag — after every descendant's exit — and never fires for
    :data:`VOID_TAGS`.  A self-closed non-void tag gets ``enter``
    followed immediately by ``exit``.  This lets callers build
    per-document indexes (e.g. the Tags-Path extraction index) in the
    same single pass as the parse instead of re-walking the tree.
    """

    def enter(self, element: Element) -> None:  # pragma: no cover
        raise NotImplementedError

    def exit(self, element: Element) -> None:  # pragma: no cover
        raise NotImplementedError


def parse(html: str, observer: Optional[ParseObserver] = None) -> Element:
    """Parse HTML text into an :class:`Element` tree.

    Returns the single root element (conventionally ``<html>``).  The
    parser tolerates a doctype prelude and surrounding whitespace; any
    structural error (unbalanced tags, text outside the root) raises
    :class:`HTMLParseError`.  An optional :class:`ParseObserver` sees
    every element enter/exit during the parse itself; on a parse error
    the observer may have seen a prefix of the document and its state
    must be discarded.
    """
    root: Optional[Element] = None
    stack: List[Element] = []
    for raw in _TOKEN_RE.findall(html):
        if raw.startswith("<"):
            if raw.startswith("<!"):
                continue  # doctype / comment
            match = _TAG_RE.match(raw)
            if match is None:
                raise HTMLParseError(f"malformed tag token {raw!r}")
            closing, tag, attr_text, self_closing = match.groups()
            tag = tag.lower()
            if closing:
                if not stack or stack[-1].tag != tag:
                    opened = stack[-1].tag if stack else None
                    raise HTMLParseError(
                        f"closing </{tag}> does not match open <{opened}>"
                    )
                element = stack.pop()
                if observer is not None:
                    observer.exit(element)
                if not stack:
                    root = element
            else:
                attrs = dict(_ATTR_RE.findall(attr_text or ""))
                element = Element(tag=tag, attrs=attrs)
                if stack:
                    stack[-1].append(element)
                elif root is not None:
                    raise HTMLParseError("multiple root elements")
                if observer is not None:
                    observer.enter(element)
                if tag not in VOID_TAGS and not self_closing:
                    stack.append(element)
                else:
                    if observer is not None and tag not in VOID_TAGS:
                        observer.exit(element)
                    if not stack and root is None:
                        root = element
        else:
            # One text token may span several rendered lines; split them
            # back into the per-line text nodes the serializer emitted so
            # that parse(render(x)) round-trips exactly.
            lines = [line.strip() for line in raw.splitlines()]
            for text in lines:
                if not text:
                    continue
                if not stack:
                    raise HTMLParseError(f"text outside the document root: {text!r}")
                stack[-1].append(text)
    if stack:
        raise HTMLParseError(f"unclosed tag <{stack[-1].tag}>")
    if root is None:
        raise HTMLParseError("empty document")
    return root


def iter_elements(node: Node) -> Iterator[Element]:
    """Depth-first iteration over every element of a subtree."""
    if isinstance(node, Element):
        yield node
        for child in node.children:
            yield from iter_elements(child)


def find_all(
    node: Node,
    tag: Optional[str] = None,
    cls: Optional[str] = None,
) -> List[Element]:
    """All elements matching an optional tag name and/or class."""
    out = []
    for element in iter_elements(node):
        if tag is not None and element.tag != tag:
            continue
        if cls is not None and not element.has_class(cls):
            continue
        out.append(element)
    return out


def text_of(node: Node) -> str:
    """Concatenated text content of a subtree."""
    if isinstance(node, str):
        return node
    return " ".join(
        part
        for part in (text_of(child) for child in node.children)
        if part
    )
