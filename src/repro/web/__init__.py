"""Simulated web: HTML documents, e-stores, trackers, pricing policies.

The $heriff only ever observes fetched HTML.  This package provides the
synthetic internet that stands in for the real e-commerce web: stores
render genuine HTML product pages (with the confounders the paper calls
out — multiple prices per page, ad blocks that change between fetches,
divergent currency notations) under configurable pricing policies, and a
third-party tracker ecosystem builds the server-side profiles that could
drive PDI-PD.
"""

from repro.web.html import Element, HTMLParseError, find_all, iter_elements, parse, render, text_of
from repro.web.catalog import Catalog, Product, make_catalog
from repro.web.trackers import Tracker, TrackerEcosystem
from repro.web.pricing import (
    ABTestPricing,
    PerCountryABTestPricing,
    ProductCountryJitterPricing,
    CompositePricing,
    CountryMultiplierPricing,
    PdiPdPricing,
    PriceQuote,
    PricingPolicy,
    RequestContext,
    TemporalDriftPricing,
    UniformPricing,
    VatInclusivePricing,
)
from repro.web.store import EStore, StoreResponse
from repro.web.internet import ContentSite, Internet, parse_url

__all__ = [
    "Element",
    "HTMLParseError",
    "find_all",
    "iter_elements",
    "parse",
    "render",
    "text_of",
    "Catalog",
    "Product",
    "make_catalog",
    "Tracker",
    "TrackerEcosystem",
    "ABTestPricing",
    "PerCountryABTestPricing",
    "ProductCountryJitterPricing",
    "CompositePricing",
    "CountryMultiplierPricing",
    "PdiPdPricing",
    "PriceQuote",
    "PricingPolicy",
    "RequestContext",
    "TemporalDriftPricing",
    "UniformPricing",
    "VatInclusivePricing",
    "EStore",
    "StoreResponse",
    "ContentSite",
    "Internet",
    "parse_url",
]
