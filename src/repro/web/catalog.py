"""Product catalogs for the simulated e-stores.

Categories and price ranges mirror the inventory mix the paper reports
("clothing, digital/electronics, travel, bookstores, art/gallery,
bicycles, etc." — Sect. 6.2), including a handful of named flagship
products that anchor specific findings:

* the Phase One IQ280 digital camera (~€34.5k in Europe, the >€10k
  cross-border difference of Sect. 6.2),
* the five representative jcpenney.com products of Fig. 14 (refrigerator,
  Whipped Mud Mask, shaving cream, 3-seat sofa, leather bag),
* chegg.com textbook rentals in the €10–€100 band (Sect. 7.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Product:
    """One product carried by a store."""

    product_id: str
    name: str
    category: str
    base_price_eur: float
    popularity: float = 1.0  # relative visit weight

    @property
    def path(self) -> str:
        """URL path of the product page on its store."""
        return f"/product/{self.product_id}"


#: category → (min €, max €) price band.
CATEGORY_PRICE_BANDS: Dict[str, Tuple[float, float]] = {
    "clothing": (15.0, 900.0),
    "electronics": (40.0, 3500.0),
    "pro-photo": (8000.0, 50000.0),
    "books": (8.0, 120.0),
    "games": (5.0, 70.0),
    "cosmetics": (6.0, 90.0),
    "furniture": (120.0, 2500.0),
    "jewelry": (50.0, 5000.0),
    "household": (10.0, 1500.0),
    "accessories": (20.0, 1500.0),
    "travel": (60.0, 2000.0),
    "bicycles": (150.0, 4000.0),
    "art": (100.0, 20000.0),
}

_ADJECTIVES = [
    "Classic", "Premium", "Urban", "Vintage", "Modern", "Deluxe", "Compact",
    "Signature", "Essential", "Limited", "Studio", "Heritage",
]
_NOUNS: Dict[str, Sequence[str]] = {
    "clothing": ("Blazer", "Jacket", "Dress", "Suit", "Coat", "Jeans", "Shirt"),
    "electronics": ("Camera", "Laptop", "Headphones", "Monitor", "Tablet", "Speaker"),
    "pro-photo": ("Medium Format Back", "Cine Lens", "Studio Body"),
    "books": ("Textbook", "Novel", "Atlas", "Handbook", "Anthology"),
    "games": ("Strategy Game", "RPG", "Simulator", "Puzzle Game"),
    "cosmetics": ("Mud Mask", "Shaving Cream", "Serum", "Face Cream", "Perfume"),
    "furniture": ("Sofa", "Armchair", "Bookshelf", "Dining Table", "Bed Frame"),
    "jewelry": ("Necklace", "Watch", "Bracelet", "Ring", "Earrings"),
    "household": ("Refrigerator", "Vacuum", "Blender", "Coffee Maker", "Washer"),
    "accessories": ("Leather Bag", "Wallet", "Belt", "Scarf", "Sunglasses"),
    "travel": ("Suitcase", "Backpack", "Travel Kit", "Duffel"),
    "bicycles": ("Road Bike", "Mountain Bike", "Commuter Bike"),
    "art": ("Print", "Sculpture", "Canvas", "Lithograph"),
}


class Catalog:
    """An ordered collection of products with weighted sampling."""

    def __init__(self, products: Sequence[Product]) -> None:
        self._products: List[Product] = list(products)
        self._by_id = {p.product_id: p for p in self._products}
        if len(self._by_id) != len(self._products):
            raise ValueError("duplicate product ids in catalog")

    def __len__(self) -> int:
        return len(self._products)

    def __iter__(self):
        return iter(self._products)

    def get(self, product_id: str) -> Optional[Product]:
        return self._by_id.get(product_id)

    def __getitem__(self, product_id: str) -> Product:
        return self._by_id[product_id]

    @property
    def products(self) -> List[Product]:
        return list(self._products)

    def sample(self, rng: random.Random, n: int) -> List[Product]:
        """Sample n distinct products weighted by popularity."""
        if n > len(self._products):
            raise ValueError(f"cannot sample {n} from {len(self._products)} products")
        pool = list(self._products)
        chosen: List[Product] = []
        for _ in range(n):
            weights = [p.popularity for p in pool]
            pick = rng.choices(range(len(pool)), weights=weights, k=1)[0]
            chosen.append(pool.pop(pick))
        return chosen


def make_catalog(
    domain: str,
    size: int,
    rng: random.Random,
    categories: Optional[Sequence[str]] = None,
    flagship: Sequence[Product] = (),
) -> Catalog:
    """Generate a deterministic catalog for a store.

    ``flagship`` products are prepended verbatim; the rest are drawn from
    the requested categories with log-uniform prices inside each
    category's band.
    """
    if categories is None:
        categories = list(CATEGORY_PRICE_BANDS)
    products: List[Product] = list(flagship)
    used = {p.product_id for p in products}
    i = 0
    while len(products) < size + len(flagship):
        category = rng.choice(list(categories))
        lo, hi = CATEGORY_PRICE_BANDS[category]
        # log-uniform keeps cheap products common and €10k+ ones rare,
        # matching the product-price spectrum of Fig. 10.
        import math

        price = math.exp(rng.uniform(math.log(lo), math.log(hi)))
        name = f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS[category])}"
        product_id = f"{domain.split('.')[0]}-{i:04d}"
        i += 1
        if product_id in used:
            continue
        used.add(product_id)
        products.append(
            Product(
                product_id=product_id,
                name=name,
                category=category,
                base_price_eur=round(price, 2),
                popularity=rng.paretovariate(1.5),
            )
        )
    return Catalog(products)


def flagship_products() -> Dict[str, Product]:
    """The named products the paper's findings hang on."""
    return {
        "iq280": Product(
            product_id="digitalrev-iq280",
            name="Phase One IQ280 Digital Back",
            category="pro-photo",
            base_price_eur=34500.0,
            popularity=0.2,
        ),
        "refrigerator": Product(
            product_id="jcp-refrigerator",
            name="4-Door French Refrigerator",
            category="household",
            base_price_eur=1390.0,
        ),
        "mud-mask": Product(
            product_id="jcp-mud-mask",
            name="Whipped Mud Mask",
            category="cosmetics",
            base_price_eur=34.0,
        ),
        "shaving-cream": Product(
            product_id="jcp-shaving-cream",
            name="Men Shaving Cream",
            category="cosmetics",
            base_price_eur=18.0,
        ),
        "sofa": Product(
            product_id="jcp-sofa",
            name="3-Seat Living Room Sofa",
            category="furniture",
            base_price_eur=820.0,
        ),
        "leather-bag": Product(
            product_id="jcp-leather-bag",
            name="Leather Bag",
            category="accessories",
            base_price_eur=210.0,
        ),
    }
