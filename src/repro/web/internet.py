"""The simulated internet: domain registry and URL-level fetching.

Ties together e-stores (:class:`repro.web.store.EStore`), plain content
sites (used only to build realistic browsing histories and tracker
profiles), and the tracker ecosystem.  Browsers fetch URLs through a
single :class:`Internet` instance, which is also what the Infrastructure
Proxy Clients use.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.web.pricing import RequestContext
from repro.web.store import EStore, StoreResponse


def parse_url(url: str) -> Tuple[str, str]:
    """Split ``http(s)://domain/path`` into ``(domain, path)``."""
    for scheme in ("https://", "http://"):
        if url.startswith(scheme):
            rest = url[len(scheme):]
            break
    else:
        rest = url
    if "/" in rest:
        domain, _, path = rest.partition("/")
        return domain, "/" + path
    return rest, "/"


class ContentSite:
    """A non-commerce site: exists to appear in browsing histories."""

    def __init__(self, domain: str, tracker_domains: Sequence[str] = ()) -> None:
        self.domain = domain
        self.tracker_domains = tuple(tracker_domains)
        self.hits = 0

    def fetch(self, path: str, ctx: RequestContext) -> StoreResponse:
        self.hits += 1
        html = (
            "<html><head><title>{d}</title></head>"
            '<body><div class="content">{d}{p}</div></body></html>'
        ).format(d=self.domain, p=path)
        return StoreResponse(
            url=f"http://{self.domain}{path}",
            status=200,
            html=html,
            set_cookies={},
            tracker_domains=self.tracker_domains,
        )


Site = Union[EStore, ContentSite]


class UnknownDomainError(KeyError):
    """No site is registered under the requested domain."""


class Internet:
    """Domain → site registry with URL-level fetch."""

    def __init__(self) -> None:
        self._sites: Dict[str, Site] = {}

    def register(self, site: Site) -> Site:
        if site.domain in self._sites:
            raise ValueError(f"domain {site.domain!r} already registered")
        self._sites[site.domain] = site
        return site

    def site(self, domain: str) -> Site:
        try:
            return self._sites[domain]
        except KeyError:
            raise UnknownDomainError(domain) from None

    def has_domain(self, domain: str) -> bool:
        return domain in self._sites

    def domains(self) -> List[str]:
        return list(self._sites)

    def stores(self) -> List[EStore]:
        return [s for s in self._sites.values() if isinstance(s, EStore)]

    def fetch(self, url: str, ctx: RequestContext) -> StoreResponse:
        """Fetch a URL as observed from the given request context."""
        domain, path = parse_url(url)
        return self.site(domain).fetch(path, ctx)
