"""Network substrate: discrete-event clock, synthetic geography, transports.

The real Price $heriff runs over the public internet (WebRTC data
channels between peers, HTTPS between components).  This package
provides both halves of the reproduction's messaging story: a
:class:`~repro.net.events.EventLoop` discrete event clock, a
:class:`~repro.net.geo.GeoDatabase` that geolocates synthetic IP
addresses, a peerjs-style overlay in :mod:`repro.net.p2p`, and — since
the transport redesign — one :class:`~repro.net.transport.Transport`
interface with two backends: the deterministic
:class:`~repro.net.transport.SimTransport` (Tier-1 default) and the
real-socket :class:`~repro.net.socket_transport.SocketTransport`.

``SimNetwork`` and ``Host`` are implementation details of the sim
backend and are deliberately *not* re-exported here any more; code
outside ``repro.net`` speaks :class:`Transport` only
(``tests/core/test_deprecations.py`` pins this).
"""

from repro.net.events import Clock, EventLoop
from repro.net.geo import Country, GeoDatabase, Location
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameTooLarge,
    ProtocolError,
    Request,
    Response,
    from_wire,
    to_wire,
)
from repro.net.sim import LatencyModel, NetworkError, NetworkTimeout
from repro.net.socket_transport import SocketTransport
from repro.net.transport import RemoteCallError, SimTransport, Transport
from repro.net.p2p import PeerChannel, PeerOverlay

__all__ = [
    "Clock",
    "EventLoop",
    "Country",
    "GeoDatabase",
    "Location",
    "LatencyModel",
    "NetworkError",
    "NetworkTimeout",
    "RemoteCallError",
    "FrameTooLarge",
    "ProtocolError",
    "Request",
    "Response",
    "from_wire",
    "to_wire",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "Transport",
    "SimTransport",
    "SocketTransport",
    "PeerChannel",
    "PeerOverlay",
]
