"""Network substrate: discrete-event clock, synthetic geography, message passing.

The real Price $heriff runs over the public internet (WebRTC data
channels between peers, HTTPS between components).  This package provides
the simulated equivalent: a :class:`~repro.net.events.EventLoop` discrete
event clock, a :class:`~repro.net.geo.GeoDatabase` that geolocates
synthetic IP addresses, a :class:`~repro.net.sim.SimNetwork` carrying
latency-delayed messages between named hosts, and a peerjs-style overlay
in :mod:`repro.net.p2p`.
"""

from repro.net.events import Clock, EventLoop
from repro.net.geo import Country, GeoDatabase, Location
from repro.net.sim import Host, LatencyModel, SimNetwork
from repro.net.p2p import PeerChannel, PeerOverlay

__all__ = [
    "Clock",
    "EventLoop",
    "Country",
    "GeoDatabase",
    "Location",
    "Host",
    "LatencyModel",
    "SimNetwork",
    "PeerChannel",
    "PeerOverlay",
]
