"""The Transport interface: one messaging API, two backends.

Historically every component message went straight through
:class:`~repro.net.sim.SimNetwork.request` (or an ad-hoc
``host.handle``).  :class:`Transport` extracts that implicit surface
into one explicit API —

    ``transport.call(src, dst, method, payload)``

— with typed :class:`~repro.net.protocol.Request`/``Response``
envelopes, so the same component code can run over

* :class:`SimTransport` — the deterministic, fault-injectable path on
  the discrete-event clock.  Tier-1 tests run here; behaviour is
  byte-for-byte what direct ``SimNetwork.request`` gave, plus the
  shared JSON codec on every payload.
* :class:`~repro.net.socket_transport.SocketTransport` — real asyncio
  TCP streams speaking the same length-prefixed JSON frames, for
  multi-process mesh deployments.

Both implementations emit identically-labelled ``sheriff_transport_*``
metrics (frames, bytes, call-latency histogram, reconnects) so a
Grafana panel reads the same over either backend; only the
``transport`` label value differs (``sim`` vs ``socket``).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.net.faults import FaultPlan
from repro.net.geo import Location
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    FrameTooLarge,
    ProtocolError,
    Request,
    Response,
    decode,
    encode,
    frame_sizes,
)
from repro.net.sim import Host, LatencyModel, NetworkError, NetworkTimeout, SimNetwork

__all__ = [
    "Handler",
    "RemoteCallError",
    "SimTransport",
    "Transport",
    "TRANSPORT_CALL_BUCKETS",
]

#: a server-side handler: ``handler(method, payload) -> result``.
Handler = Callable[[str, Any], Any]

#: latency buckets for the call histogram — sub-millisecond loopback
#: frames up to multi-second proxied fetches.
TRANSPORT_CALL_BUCKETS = (
    0.0005,
    0.002,
    0.01,
    0.05,
    0.2,
    1.0,
    5.0,
    30.0,
)


class RemoteCallError(NetworkError):
    """The peer was reachable but its handler raised.

    Distinct from a delivery failure: the network worked, the remote
    code did not.  ``kind`` preserves the remote exception's class name
    so callers can branch without parsing the message.
    """

    def __init__(self, message: str, kind: str = "Exception") -> None:
        super().__init__(message)
        self.kind = kind


class _TransportTelemetry:
    """The ``sheriff_transport_*`` series, shared by both backends.

    One instance per transport; the ``transport`` label carries the
    backend name so sim and socket runs chart on the same panel.
    """

    def __init__(self, registry, label: str) -> None:
        self.label = label
        self.frames = registry.counter(
            "sheriff_transport_frames_total",
            "Envelope frames moved through the transport",
            labelnames=("transport", "direction"),
        )
        self.bytes = registry.counter(
            "sheriff_transport_bytes_total",
            "Encoded envelope bytes moved through the transport",
            labelnames=("transport", "direction"),
        )
        self.calls = registry.histogram(
            "sheriff_transport_call_seconds",
            "Round-trip latency of transport.call",
            buckets=TRANSPORT_CALL_BUCKETS,
            labelnames=("transport", "method"),
        )
        self.errors = registry.counter(
            "sheriff_transport_errors_total",
            "transport.call failures by error kind",
            labelnames=("transport", "kind"),
        )
        self.reconnects = registry.counter(
            "sheriff_transport_reconnects_total",
            "Connections re-established after a peer went away",
            labelnames=("transport",),
        )

    def sent(self, nbytes: int) -> None:
        self.frames.inc(transport=self.label, direction="out")
        self.bytes.inc(nbytes, transport=self.label, direction="out")

    def received(self, nbytes: int) -> None:
        self.frames.inc(transport=self.label, direction="in")
        self.bytes.inc(nbytes, transport=self.label, direction="in")

    def observed_call(self, method: str, seconds: float) -> None:
        self.calls.observe(seconds, transport=self.label, method=method)

    def failed(self, kind: str) -> None:
        self.errors.inc(transport=self.label, kind=kind)

    def reconnected(self) -> None:
        self.reconnects.inc(transport=self.label)


def _raise_error_response(resp: Response) -> None:
    """Map an error envelope back onto the typed exception hierarchy."""
    if resp.error_kind == "timeout":
        raise NetworkTimeout(resp.error_message or "remote timeout")
    if resp.error_kind == "network":
        raise NetworkError(resp.error_message or "remote network error")
    kind, _, message = (resp.error_message or "").partition(": ")
    raise RemoteCallError(
        resp.error_message or "remote handler failed",
        kind=kind if message else "Exception",
    )


def serve_request(handler: Handler, req: Request) -> Response:
    """Run a bound handler against one request; never raises.

    Shared by both transports so a handler exception produces the same
    error envelope whether it happened in-process or across a socket.
    """
    try:
        result = handler(req.method, req.payload)
    except NetworkTimeout as exc:
        return Response(req.call_id, ok=False, error_kind="timeout", error_message=str(exc))
    except NetworkError as exc:
        return Response(req.call_id, ok=False, error_kind="network", error_message=str(exc))
    except Exception as exc:  # noqa: BLE001 - error envelopes carry any failure
        return Response(
            req.call_id,
            ok=False,
            error_kind="remote",
            error_message=f"{type(exc).__name__}: {exc}",
        )
    return Response(req.call_id, ok=True, result=result)


class Transport:
    """Abstract messaging surface between $heriff components.

    Lifecycle: ``bind`` server endpoints (or ``register_client`` pure
    callers), ``call`` between them, ``close`` when done.  Endpoint
    names are the addressing scheme — the same names the dispatcher and
    fault plans already use (``coordinator``, ``m0``, ``db``…).
    """

    #: backend name; also the ``transport`` metric/span label value.
    label = "transport"

    def bind(self, name: str, handler: Handler, location: Optional[Location] = None) -> None:
        """Expose ``handler`` as the endpoint ``name``."""
        raise NotImplementedError

    def register_client(self, name: str, location: Optional[Location] = None) -> None:
        """Declare a caller-only endpoint (no inbound handler)."""
        raise NotImplementedError

    def unbind(self, name: str) -> None:
        """Remove an endpoint entirely (decommission, not crash)."""
        raise NotImplementedError

    def call(
        self,
        src: str,
        dst: str,
        method: str,
        payload: Any = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Invoke ``method`` on ``dst`` and return its result.

        Raises :class:`NetworkError` for delivery failures,
        :class:`NetworkTimeout` when the deadline passes, and
        :class:`RemoteCallError` when the remote handler raised.
        """
        raise NotImplementedError

    def endpoints(self) -> List[str]:
        """Names currently bound (servers and registered clients)."""
        raise NotImplementedError

    def take_offline(self, name: str) -> None:
        """Simulate/effect an endpoint crash: calls to it start failing."""
        raise NotImplementedError

    def restart_endpoint(self, name: str) -> None:
        """Bring a bound endpoint back after :meth:`take_offline`."""
        raise NotImplementedError

    def close(self) -> None:
        """Release all endpoints; subsequent calls raise NetworkError."""
        raise NotImplementedError

    def bind_telemetry(self, telemetry) -> None:
        """Attach the deployment's telemetry plane (unified convention)."""
        self._telemetry = _TransportTelemetry(telemetry.registry, self.label)


class SimTransport(Transport):
    """Deterministic transport over :class:`SimNetwork`.

    Each bound endpoint becomes a :class:`Host` whose handler speaks
    the wire codec: requests are encoded to JSON text, carried by
    ``SimNetwork.request`` (where latency, drops, timeouts, delays and
    corruption apply exactly as before), and decoded back.  A corrupt
    fault therefore mangles real JSON and surfaces as a protocol error,
    just as it would on a socket.

    Determinism: the latency model uses its own seeded RNG stream (named
    by ``rng_seed``) so installing a transport alongside existing
    components never perturbs their draws.
    """

    label = "sim"

    def __init__(
        self,
        clock=None,
        network: Optional[SimNetwork] = None,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        default_location: Optional[Location] = None,
        rng_seed: str = "transport",
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        if network is not None:
            self.network = network
        else:
            self.network = SimNetwork(
                latency=latency
                if latency is not None
                else LatencyModel(rng=random.Random(f"{rng_seed}:latency")),
                faults=faults,
                clock=clock,
            )
        self.clock = clock if clock is not None else self.network.clock
        self.max_frame_bytes = max_frame_bytes
        self._default_location = (
            default_location
            if default_location is not None
            else Location(country="US", region="CA", city="Mountain View", ip="10.0.0.1")
        )
        self._handlers: Dict[str, Handler] = {}
        self._call_ids = iter(range(1, 1 << 62))
        self._closed = False
        self._telemetry: Optional[_TransportTelemetry] = None

    # -- endpoint management ----------------------------------------------
    def _wire_handler(self, name: str) -> Callable[[Any], Any]:
        def handle(wire: Any) -> Any:
            req = decode(wire)
            if not isinstance(req, Request):
                raise ProtocolError(f"endpoint {name!r} received a non-request frame")
            resp = serve_request(self._handlers[name], req)
            body = encode(resp)
            if len(body) > self.max_frame_bytes:
                resp = Response(
                    req.call_id,
                    ok=False,
                    error_kind="network",
                    error_message=(
                        f"response of {len(body)} bytes exceeds frame limit "
                        f"{self.max_frame_bytes}"
                    ),
                )
                body = encode(resp)
            return body.decode("utf-8")

        return handle

    def bind(self, name: str, handler: Handler, location: Optional[Location] = None) -> None:
        self._handlers[name] = handler
        self.network.add_host(
            Host(
                name=name,
                location=location if location is not None else self._default_location,
                handler=self._wire_handler(name),
            )
        )

    def register_client(self, name: str, location: Optional[Location] = None) -> None:
        self.network.add_host(
            Host(
                name=name,
                location=location if location is not None else self._default_location,
            )
        )

    def endpoints(self) -> List[str]:
        return [h.name for h in self.network.hosts()]

    def unbind(self, name: str) -> None:
        self._handlers.pop(name, None)
        self.network.remove_host(name)

    def take_offline(self, name: str) -> None:
        self.network.host(name).online = False

    def restart_endpoint(self, name: str) -> None:
        """Restart the endpoint's host and re-install its wire handler.

        ``SimNetwork.restart_host`` replaces the host object with a
        fresh one; re-installing the handler here keeps the transport
        authoritative even if the old host's handler was detached.
        """
        host = self.network.restart_host(name)
        if name in self._handlers:
            host.handler = self._wire_handler(name)

    def close(self) -> None:
        self._closed = True
        for host in self.network.hosts():
            host.online = False

    # -- calls ------------------------------------------------------------
    def call(
        self,
        src: str,
        dst: str,
        method: str,
        payload: Any = None,
        timeout: Optional[float] = None,
    ) -> Any:
        if self._closed:
            raise NetworkError("transport is closed")
        req = Request(
            call_id=next(self._call_ids), src=src, dst=dst, method=method, payload=payload
        )
        wire = encode(req)
        if len(wire) > self.max_frame_bytes:
            if self._telemetry:
                self._telemetry.failed("frame_too_large")
            raise FrameTooLarge(
                f"frame of {len(wire)} bytes exceeds limit {self.max_frame_bytes}"
            )
        if self._telemetry:
            self._telemetry.sent(len(wire))
        try:
            raw, rtt = self.network.request(src, dst, wire.decode("utf-8"))
        except NetworkTimeout:
            if self._telemetry:
                self._telemetry.failed("timeout")
            raise
        except NetworkError:
            if self._telemetry:
                self._telemetry.failed("network")
            raise
        if timeout is not None and rtt > timeout:
            if self._telemetry:
                self._telemetry.failed("timeout")
            raise NetworkTimeout(
                f"call {src!r} → {dst!r} {method!r} took {rtt:.3f}s > timeout {timeout:g}s"
            )
        try:
            resp = decode(raw)
        except ProtocolError as exc:
            if self._telemetry:
                self._telemetry.failed("protocol")
            raise NetworkError(f"corrupt frame from {dst!r}: {exc}") from exc
        if not isinstance(resp, Response):
            if self._telemetry:
                self._telemetry.failed("protocol")
            raise NetworkError(f"endpoint {dst!r} answered with a non-response frame")
        if self._telemetry:
            _, body = frame_sizes(resp)
            self._telemetry.received(body)
            self._telemetry.observed_call(method, rtt)
        if not resp.ok:
            if self._telemetry:
                self._telemetry.failed(resp.error_kind or "remote")
            _raise_error_response(resp)
        return resp.result
