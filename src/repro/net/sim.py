"""Message-passing network simulation with a geographic latency model.

All traffic between $heriff components (add-on ↔ Coordinator ↔
Measurement servers ↔ proxy clients) flows through a
:class:`SimNetwork`.  Requests are delivered synchronously — the caller
receives the response plus the simulated wall time the round trip took —
which is what the price-check protocol needs: the initiator's add-on
blocks on the result page, and measurement latency only matters in
aggregate (Table 1), where it is fed into the queueing model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.faults import FaultPlan
from repro.net.geo import Location


class NetworkError(RuntimeError):
    """Raised when a request cannot be delivered (host down / unknown)."""


class NetworkTimeout(NetworkError):
    """The request was sent but no response arrived before the deadline."""


@dataclass
class Host:
    """A named, geolocated endpoint with a request handler.

    ``handler`` receives ``(payload)`` and returns the response payload.
    ``slowdown`` models chronically overloaded nodes (the paper observes
    some PlanetLab IPC hosts imposing extra delay, Sect. 5).
    """

    name: str
    location: Location
    handler: Optional[Callable[[Any], Any]] = None
    online: bool = True
    slowdown: float = 1.0

    def handle(self, payload: Any) -> Any:
        if self.handler is None:
            raise NetworkError(f"host {self.name} has no handler")
        return self.handler(payload)


class LatencyModel:
    """One-way latency between two locations, with lognormal jitter.

    Same city ≈ 5 ms, same country ≈ 20 ms, international ≈ 120 ms —
    coarse but sufficient: the experiments only depend on latency through
    the Table-1 service-time model and the "fetch at the same time"
    property, which the simulation guarantees by construction.
    """

    SAME_CITY = 0.005
    SAME_COUNTRY = 0.020
    INTERNATIONAL = 0.120

    def __init__(self, rng: Optional[random.Random] = None, jitter: float = 0.25) -> None:
        self._rng = rng if rng is not None else random.Random(0)
        self._jitter = jitter

    def base_latency(self, src: Location, dst: Location) -> float:
        if src.country != dst.country:
            return self.INTERNATIONAL
        if src.city != dst.city:
            return self.SAME_COUNTRY
        return self.SAME_CITY

    def latency(self, src: Location, dst: Location) -> float:
        base = self.base_latency(src, dst)
        if self._jitter <= 0:
            return base
        return base * self._rng.lognormvariate(0.0, self._jitter)


#: simulated server-side time to render one product page (connection
#: setup + page generation); latency rides on top of this.
FETCH_SERVICE_SECONDS = 0.35


def fetch_duration(
    model: LatencyModel,
    src: Location,
    dst: Optional[Location],
    slowdown: float = 1.0,
    service_seconds: float = FETCH_SERVICE_SECONDS,
) -> float:
    """Simulated wall time of one proxied page fetch.

    Round trip to the vantage point plus the store's service time,
    stretched by the vantage point's chronic ``slowdown`` factor
    (Sect. 5's overloaded PlanetLab nodes).  ``dst=None`` — a vantage
    point whose location is unknown, e.g. a peer that vanished from the
    overlay — is billed at the international baseline.
    """
    if dst is None:
        one_way = model.INTERNATIONAL
    else:
        one_way = model.latency(src, dst)
    return (2.0 * one_way + service_seconds) * max(1.0, slowdown)


@dataclass
class _Transfer:
    """Record of one delivered request (for tests and monitoring)."""

    src: str
    dst: str
    rtt: float


class SimNetwork:
    """Registry of hosts plus synchronous request delivery."""

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        clock=None,
    ) -> None:
        self.latency_model = latency if latency is not None else LatencyModel()
        self.faults = faults
        #: optional sim clock; when present together with a fault plan,
        #: delivery honors flap windows (``FaultPlan.host_down``), which
        #: clock-less legacy constructions never consulted.
        self.clock = clock
        self._hosts: Dict[str, Host] = {}
        self.transfers: List[_Transfer] = []

    def install_fault_plan(self, faults: Optional[FaultPlan]) -> None:
        """Attach (or clear) the chaos schedule consulted on delivery."""
        self.faults = faults

    # -- host management ---------------------------------------------------
    def add_host(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise ValueError(f"duplicate host name {host.name!r}")
        self._hosts[host.name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def remove_host(self, name: str) -> None:
        self._hosts.pop(name, None)

    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    def restart_host(self, name: str) -> Host:
        """Replace a host with a fresh online one (the ops restart action).

        Models a process replacement: a *new* host object inherits the
        old one's location, handler and chronic slowdown, and any flap
        window the fault plan holds open is closed — a replaced process
        answers its next heartbeat.  Carrying the handler (and keeping
        ``self.faults`` installed network-side, where delivery faults
        actually live) is what guarantees a restarted host still honors
        the active chaos profile; an earlier version merely flipped the
        ``online`` flag, which left any per-host hook on the stale
        object.  RNG-free, like every supervised action.
        """
        old = self.host(name)
        fresh = Host(
            name=old.name,
            location=old.location,
            handler=old.handler,
            online=True,
            slowdown=old.slowdown,
        )
        self._hosts[name] = fresh
        if self.faults is not None:
            self.faults.end_flap(name)
        return fresh

    # -- traffic -------------------------------------------------------------
    def rtt(self, src: str, dst: str) -> float:
        """Round-trip latency between two registered hosts."""
        a, b = self.host(src), self.host(dst)
        one_way = self.latency_model.latency(a.location, b.location)
        return 2.0 * one_way * max(a.slowdown, b.slowdown)

    def request(self, src: str, dst: str, payload: Any) -> Tuple[Any, float]:
        """Deliver ``payload`` from ``src`` to ``dst``; return (response, rtt).

        Raises :class:`NetworkError` if the destination is offline, which
        the dispatch protocol treats as a missed heartbeat.
        """
        target = self.host(dst)
        self.host(src)  # validate the source exists too
        if not target.online:
            raise NetworkError(f"host {dst!r} is offline")
        if (
            self.faults is not None
            and self.clock is not None
            and self.faults.host_down(dst, self.clock.now, role="host")
        ):
            raise NetworkError(f"host {dst!r} is flapping (chaos window open)")
        rtt = self.rtt(src, dst)
        decision = (
            self.faults.decide(src, dst, role="host")
            if self.faults is not None
            else None
        )
        if decision:
            if decision.kind == "drop":
                raise NetworkError(f"request {src!r} → {dst!r} was dropped")
            if decision.kind == "timeout":
                raise NetworkTimeout(f"request {src!r} → {dst!r} timed out")
            if decision.kind == "delay":
                rtt *= decision.delay_factor
        response = target.handle(payload)
        if decision and decision.kind == "corrupt" and isinstance(response, str):
            response = self.faults.corrupt_text(response)
        self.transfers.append(_Transfer(src=src, dst=dst, rtt=rtt))
        return response, rtt
