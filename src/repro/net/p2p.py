"""Peer-to-peer overlay modelled on the peerjs/WebRTC layer of the add-on.

Every browser running the add-on registers with the overlay under a
unique peer ID (Sect. 10.2.2: "Each peer client has a unique ID, which
the system uses to track it").  The Coordinator consumes the overlay's
presence information to maintain per-location peer lists; Measurement
servers open :class:`PeerChannel` s to ask PPCs for remote page requests.

Privacy property preserved from the paper: a PPC is only ever contacted
by a Measurement server, never by the initiating peer, so it cannot
associate page requests with the initiator's identity.
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.net.faults import ROLE_PPC, FaultPlan, PeerTimeout
from repro.net.geo import Location

_PEER_ID_ALPHABET = (
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_"
)


def make_peer_id(
    rng_token: Optional[str] = None, rng: Optional[random.Random] = None
) -> str:
    """Generate a peerjs-style opaque identifier.

    Pass a seeded ``rng`` to mint the ID deterministically — simulations
    route all identity randomness through their injected RNG so that a
    chaos run's event log replays identically from its seed.
    """
    if rng_token is not None:
        return rng_token
    if rng is not None:
        return "".join(rng.choice(_PEER_ID_ALPHABET) for _ in range(12))
    return secrets.token_urlsafe(9)


@dataclass
class PeerRecord:
    """Presence record for one online peer (mirrors the panel in Fig. 16)."""

    peer_id: str
    location: Location
    handler: Callable[[Any], Any]
    online: bool = True

    def row(self) -> Dict[str, str]:
        """One row of the peer-proxy monitoring panel."""
        return {
            "Peer ID": self.peer_id,
            "IP": self.location.ip,
            "Country": self.location.country,
            "Region": self.location.region,
            "City": self.location.city,
        }


class PeerChannel:
    """A point-to-point data channel to a single peer.

    With a :class:`~repro.net.faults.FaultPlan` installed on the
    overlay, each ``send`` is one delivery attempt the plan may drop,
    time out, or corrupt — exactly the flaky-volunteer behaviour the
    crowd-assisted predecessor measured.
    """

    def __init__(
        self,
        record: PeerRecord,
        faults: Optional[FaultPlan] = None,
        src: str = "measurement",
    ) -> None:
        self._record = record
        self._faults = faults
        self._src = src

    @property
    def peer_id(self) -> str:
        return self._record.peer_id

    def send(self, message: Any) -> Any:
        peer_id = self._record.peer_id
        if not self._record.online:
            raise ConnectionError(f"peer {peer_id} is offline")
        decision = (
            self._faults.decide(self._src, peer_id, role=ROLE_PPC)
            if self._faults is not None
            else None
        )
        if decision:
            if decision.kind == "drop":
                raise ConnectionError(f"request to peer {peer_id} was dropped")
            if decision.kind == "timeout":
                raise PeerTimeout(f"peer {peer_id} did not answer in time")
        reply = self._record.handler(message)
        if decision and decision.kind == "corrupt" and isinstance(reply, dict):
            reply = self._faults.corrupt_reply(reply)
        return reply


class PeerOverlay:
    """Signaling server + registry for the P2P network of PPCs."""

    def __init__(self, faults: Optional[FaultPlan] = None) -> None:
        self._peers: Dict[str, PeerRecord] = {}
        self.faults = faults
        self._m_churn = None
        self._m_online = None
        self._m_info = None

    def bind_telemetry(self, telemetry) -> None:
        """Churn counters + the presence series the Fig. 16 panel reads."""
        self._bind_registry(telemetry.registry)

    def _bind_registry(self, registry) -> None:
        self._m_churn = registry.counter(
            "sheriff_peer_churn_total",
            "Peer arrivals and departures", labelnames=("event",),
        )
        self._m_online = registry.gauge(
            "sheriff_peers_online", "Peers currently online"
        )
        self._m_info = registry.gauge(
            "sheriff_peer_info",
            "1 per online peer, location in the labels (Fig. 16)",
            labelnames=("peer_id", "ip", "country", "region", "city"),
        )
        for record in self._peers.values():  # backfill pre-bind peers
            self._sync_peer(record)
        self._m_online.set(len(self.online_peers()))

    def _info_labels(self, record: PeerRecord) -> Dict[str, str]:
        return dict(
            peer_id=record.peer_id, ip=record.location.ip,
            country=record.location.country, region=record.location.region,
            city=record.location.city,
        )

    def _sync_peer(self, record: PeerRecord) -> None:
        if self._m_info is not None:
            if record.online:
                self._m_info.set(1, **self._info_labels(record))
            else:
                self._m_info.remove(**self._info_labels(record))

    def register(
        self,
        peer_id: str,
        location: Location,
        handler: Callable[[Any], Any],
    ) -> PeerRecord:
        record = PeerRecord(peer_id=peer_id, location=location, handler=handler)
        self._peers[peer_id] = record
        if self._m_churn is not None:
            self._m_churn.inc(event="joined")
            self._m_online.set(len(self.online_peers()))
        self._sync_peer(record)
        return record

    def unregister(self, peer_id: str) -> None:
        record = self._peers.pop(peer_id, None)
        if record is not None and self._m_churn is not None:
            self._m_churn.inc(event="left")
            self._m_info.remove(**self._info_labels(record))
            self._m_online.set(len(self.online_peers()))

    def set_online(self, peer_id: str, online: bool) -> None:
        record = self._peers[peer_id]
        was_online = record.online
        record.online = online
        if self._m_churn is not None and was_online != online:
            self._m_churn.inc(event="online" if online else "offline")
            self._sync_peer(record)
            self._m_online.set(len(self.online_peers()))

    def is_online(self, peer_id: str) -> bool:
        record = self._peers.get(peer_id)
        return bool(record and record.online)

    def get(self, peer_id: str) -> PeerRecord:
        try:
            return self._peers[peer_id]
        except KeyError:
            raise KeyError(f"unknown peer {peer_id!r}") from None

    def connect(self, peer_id: str, src: str = "measurement") -> PeerChannel:
        try:
            record = self._peers[peer_id]
        except KeyError:
            raise ConnectionError(f"unknown peer {peer_id!r}") from None
        return PeerChannel(record, faults=self.faults, src=src)

    def location_of(self, peer_id: str) -> Optional[Location]:
        """The peer's registered location, or None for unknown peers."""
        record = self._peers.get(peer_id)
        return record.location if record is not None else None

    # -- presence queries (used by the Coordinator) ------------------------
    def online_peers(self) -> List[PeerRecord]:
        return [p for p in self._peers.values() if p.online]

    def peers_in_country(self, country: str) -> List[PeerRecord]:
        return [p for p in self.online_peers() if p.location.country == country]

    def peers_in_city(self, country: str, city: str) -> List[PeerRecord]:
        return [
            p
            for p in self.online_peers()
            if p.location.country == country and p.location.city == city
        ]

    def monitoring_rows(self) -> List[Dict[str, str]]:
        """The peer-proxy monitoring panel of Fig. 16."""
        return [p.row() for p in self.online_peers()]
