"""Typed request/response envelopes and the shared wire codec.

Every message between $heriff components travels as one of two
envelopes — :class:`Request` or :class:`Response` — serialised by the
*same* JSON codec regardless of transport.  The sim transport carries
the encoded text through :class:`~repro.net.sim.SimNetwork`; the socket
transport frames the same bytes with a 4-byte big-endian length prefix
on a TCP stream.  Routing both paths through one codec is what makes
the row-identity property cheap to guarantee: any payload that survives
``encode`` → ``decode`` is normalised identically (tuples become lists,
dict keys become strings) no matter which transport delivered it.

Wire format (socket mode)::

    +----------------+----------------------------------+
    | length (4B BE) | UTF-8 JSON of to_wire(envelope)  |
    +----------------+----------------------------------+

The length counts the JSON body only.  Frames above
:data:`MAX_FRAME_BYTES` are refused on *both* sides — the sender raises
:class:`FrameTooLarge` before writing, the receiver drops the
connection — so an oversized payload fails identically through either
transport.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union

__all__ = [
    "FrameTooLarge",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Response",
    "decode",
    "encode",
    "from_wire",
    "pack_frame",
    "split_frame",
    "to_wire",
]

#: bumped whenever the envelope schema changes; the mesh handshake
#: refuses to pair components speaking different versions.
PROTOCOL_VERSION = 1

#: refuse frames above 4 MiB — far beyond any legitimate price-check
#: batch, small enough to bound a misbehaving peer's memory cost.
MAX_FRAME_BYTES = 4 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(ValueError):
    """A frame or envelope that does not parse as the wire protocol."""


class FrameTooLarge(ProtocolError):
    """An envelope whose encoded size exceeds the frame limit."""


@dataclass(frozen=True)
class Request:
    """One method call from ``src`` to ``dst``.

    ``call_id`` pairs the eventual :class:`Response` with its caller on
    a multiplexed connection; ``payload`` must be JSON-representable
    (the codec is the compatibility contract between transports).
    """

    call_id: int
    src: str
    dst: str
    method: str
    payload: Any = None


@dataclass(frozen=True)
class Response:
    """The outcome of one :class:`Request`.

    ``ok`` responses carry ``result``; failures carry ``error_kind`` —
    ``"network"``, ``"timeout"`` or ``"remote"`` — which the client
    transport maps back onto the typed exception hierarchy
    (:class:`~repro.net.sim.NetworkError` / ``NetworkTimeout`` /
    :class:`~repro.net.transport.RemoteCallError`).
    """

    call_id: int
    ok: bool
    result: Any = None
    error_kind: Optional[str] = None
    error_message: str = field(default="")


Envelope = Union[Request, Response]


def to_wire(msg: Envelope) -> dict:
    """Render an envelope as a plain JSON-ready dict."""
    if isinstance(msg, Request):
        return {
            "v": PROTOCOL_VERSION,
            "type": "request",
            "id": msg.call_id,
            "src": msg.src,
            "dst": msg.dst,
            "method": msg.method,
            "payload": msg.payload,
        }
    if isinstance(msg, Response):
        wire: dict = {
            "v": PROTOCOL_VERSION,
            "type": "response",
            "id": msg.call_id,
            "ok": msg.ok,
        }
        if msg.ok:
            wire["result"] = msg.result
        else:
            wire["error_kind"] = msg.error_kind or "remote"
            wire["error_message"] = msg.error_message
        return wire
    raise ProtocolError(f"not an envelope: {type(msg).__name__}")


def from_wire(obj: Any) -> Envelope:
    """Parse a decoded JSON object back into a typed envelope."""
    if not isinstance(obj, dict):
        raise ProtocolError(f"envelope must be an object, got {type(obj).__name__}")
    version = obj.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"protocol version {version!r} != {PROTOCOL_VERSION}")
    kind = obj.get("type")
    try:
        if kind == "request":
            return Request(
                call_id=int(obj["id"]),
                src=str(obj["src"]),
                dst=str(obj["dst"]),
                method=str(obj["method"]),
                payload=obj.get("payload"),
            )
        if kind == "response":
            ok = bool(obj["ok"])
            return Response(
                call_id=int(obj["id"]),
                ok=ok,
                result=obj.get("result"),
                error_kind=None if ok else str(obj.get("error_kind") or "remote"),
                error_message="" if ok else str(obj.get("error_message") or ""),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {kind} envelope: {exc}") from exc
    raise ProtocolError(f"unknown envelope type {kind!r}")


def encode(msg: Envelope) -> bytes:
    """Serialise an envelope to canonical UTF-8 JSON bytes.

    ``sort_keys`` makes the encoding deterministic so byte counts (and
    the frame-size check) agree between the sender and any re-encoder.
    """
    try:
        return json.dumps(
            to_wire(msg), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"payload is not JSON-representable: {exc}") from exc


def decode(data: Union[bytes, str]) -> Envelope:
    """Parse codec output (or a corrupted imitation of it)."""
    try:
        if isinstance(data, bytes):
            data = data.decode("utf-8")
        return from_wire(json.loads(data))
    except ProtocolError:
        raise
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc


def pack_frame(msg: Envelope, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Encode an envelope and prepend the 4-byte length header."""
    body = encode(msg)
    if len(body) > max_frame_bytes:
        raise FrameTooLarge(
            f"frame of {len(body)} bytes exceeds limit {max_frame_bytes}"
        )
    return _HEADER.pack(len(body)) + body


def split_frame(header: bytes, max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Validate a frame header and return the body length it announces."""
    if len(header) != _HEADER.size:
        raise ProtocolError(f"truncated frame header ({len(header)} bytes)")
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLarge(
            f"peer announced a {length}-byte frame, limit {max_frame_bytes}"
        )
    return length


async def read_frame(reader, max_frame_bytes: int = MAX_FRAME_BYTES) -> Envelope:
    """Read one length-prefixed envelope from an asyncio stream reader.

    Raises :class:`ProtocolError` subclasses on malformed input and
    lets ``IncompleteReadError``/``ConnectionError`` propagate so the
    transport can map them onto ``NetworkError``.
    """
    header = await reader.readexactly(_HEADER.size)
    length = split_frame(header, max_frame_bytes)
    body = await reader.readexactly(length)
    return decode(body)


def frame_sizes(msg: Envelope) -> Tuple[int, int]:
    """(header+body, body) byte sizes of an envelope — for telemetry."""
    body = len(encode(msg))
    return _HEADER.size + body, body
