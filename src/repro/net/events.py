"""Discrete-event simulation clock and event loop.

All components of the reproduction that need a notion of "now" (stores
drifting prices over days, the Table-1 queueing model, heartbeats of the
request-distribution protocol) share a :class:`Clock`.  Simulated time is
measured in seconds since the epoch of the deployment window the paper
analyzes (August 2015); helpers convert to days for the temporal
experiments.

The :class:`EventLoop` is a classic heap-driven engine.  Two styles are
supported:

* callback style — ``loop.call_at(t, fn)`` / ``loop.call_later(dt, fn)``;
* process style — ``loop.spawn(gen)`` where ``gen`` is a generator that
  ``yield``-s delays in seconds, which is the natural way to express the
  client/server processes of the performance model.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

SECONDS_PER_DAY = 86_400.0


class Clock:
    """Monotonic simulated clock (seconds since the simulation epoch)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    @property
    def day(self) -> float:
        """Current time expressed in (fractional) days."""
        return self._now / SECONDS_PER_DAY

    def advance(self, seconds: float) -> float:
        """Move the clock forward; negative advances are a bug."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump forward to an absolute time; going backwards is a bug."""
        if when < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {when}")
        self._now = when
        return self._now

    def advance_days(self, days: float) -> float:
        return self.advance(days * SECONDS_PER_DAY)


@dataclass(order=True)
class _Event:
    when: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by the scheduling calls; allows cancellation."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def when(self) -> float:
        return self._event.when

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class EventLoop:
    """Heap-based discrete-event loop sharing a :class:`Clock`."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._processed = 0

    # -- scheduling ------------------------------------------------------
    def call_at(self, when: float, fn: Callable[[], None]) -> EventHandle:
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule event at {when} before now={self.clock.now}"
            )
        event = _Event(when=when, seq=next(self._seq), fn=fn)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def call_later(self, delay: float, fn: Callable[[], None]) -> EventHandle:
        return self.call_at(self.clock.now + max(0.0, delay), fn)

    def spawn(self, process: Generator[float, None, None]) -> None:
        """Run a generator-style process: each yielded value is a delay."""

        def step() -> None:
            try:
                delay = next(process)
            except StopIteration:
                return
            self.call_later(delay, step)

        self.call_later(0.0, step)

    # -- execution -------------------------------------------------------
    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def processed(self) -> int:
        """Number of events executed so far (useful in tests)."""
        return self._processed

    def _pop(self) -> Optional[_Event]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_next(self) -> Optional[float]:
        """Time of the next live event, or None with an empty queue."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].when if self._heap else None

    def step(self) -> bool:
        """Execute exactly one event (advancing the clock to it).

        Returns False when the queue is empty.  This is the primitive
        the pipelined price-check engine pumps from ``poll``: advance
        the simulation just far enough for the next fetch to land.
        """
        event = self._pop()
        if event is None:
            return False
        self.clock.advance_to(event.when)
        self._processed += 1
        event.fn()
        return True

    def run_until(self, deadline: float) -> None:
        """Execute events with ``when <= deadline``; clock ends at deadline."""
        while True:
            # peek past cancelled heads: a dead event before the
            # deadline must not pull a live event from beyond it
            upcoming = self.peek_next()
            if upcoming is None or upcoming > deadline:
                break
            event = self._pop()
            if event is None:  # pragma: no cover - peek guarantees one
                break
            self.clock.advance_to(event.when)
            self._processed += 1
            event.fn()
        self.clock.advance_to(max(self.clock.now, deadline))

    def run(self, max_events: Optional[int] = None) -> None:
        """Drain the queue (optionally bounded by ``max_events``)."""
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                return
            event = self._pop()
            if event is None:
                return
            self.clock.advance_to(event.when)
            self._processed += 1
            event.fn()
            count += 1


@dataclass(frozen=True)
class NetEvent:
    """One clock-stamped network-visible event (queue traffic, etc.)."""

    when: float
    kind: str
    subject: str
    detail: Dict[str, object] = field(default_factory=dict)


class EventLog:
    """Bounded append-only log of :class:`NetEvent`s on a shared clock.

    The measurement tier's job queue records its traffic here
    (``enqueue``/``dispatch``/``steal``/``shed``/``dead_letter``), so
    tests and operator tooling can replay exactly what the queue did
    and when.  The log is read-only state: recording never touches any
    RNG and never schedules work, so it is safe to consult from ops
    probes (the restart-equivalence property).
    """

    def __init__(self, clock: Clock, capacity: Optional[int] = 4096) -> None:
        self._clock = clock
        self._events: Deque[NetEvent] = deque(maxlen=capacity)
        self._counts: Counter = Counter()

    def record(self, kind: str, subject: str, **detail: object) -> NetEvent:
        event = NetEvent(self._clock.now, kind, subject, dict(detail))
        self._events.append(event)
        self._counts[kind] += 1
        return event

    @property
    def events(self) -> List[NetEvent]:
        return list(self._events)

    def of_kind(self, kind: str) -> List[NetEvent]:
        return [e for e in self._events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Per-kind totals over the log's whole lifetime (not capped)."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._events)


def daily_ticks(start_day: float, n_days: int) -> Iterable[Tuple[int, float]]:
    """Yield ``(day_index, absolute_time_seconds)`` for n consecutive days."""
    for i in range(n_days):
        yield i, (start_day + i) * SECONDS_PER_DAY
