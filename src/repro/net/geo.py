"""Synthetic geography: countries, cities, VAT schedules, and GeoIP.

The live $heriff geolocates peers via an IP geolocation service at
zip-code, city, or country granularity (Sect. 3.2).  We reproduce that
with a deterministic synthetic GeoIP database: every country owns a
distinct ``10.<index>.0.0/16`` block and the :class:`GeoDatabase` maps an
address back to a :class:`Location`.

Countries carry the metadata the experiments need:

* the local currency (ISO 4217 code) used by stores in that country,
* the VAT schedule — standard plus reduced category rates — which drives
  the amazon.com case study of Sect. 7.3 where within-country price
  differences "match almost perfectly the VAT scales",
* a small list of city names so peer listings look like the monitoring
  panel of Fig. 16.

The set includes the 55 countries of the live deployment; the ones called
out by name in the paper (Tables 2 & 4, Fig. 2) are listed first.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Country:
    """Static country metadata used across the simulation."""

    code: str  # ISO 3166-1 alpha-2
    name: str
    currency: str  # ISO 4217
    vat_standard: float  # fraction, e.g. 0.21
    vat_reduced: Tuple[float, ...] = ()
    cities: Tuple[str, ...] = ()
    eu_member: bool = False

    @property
    def vat_rates(self) -> Tuple[float, ...]:
        """All VAT category rates, standard first."""
        return (self.vat_standard,) + self.vat_reduced


@dataclass(frozen=True)
class Location:
    """A resolved vantage point location (country / region / city / ip)."""

    country: str
    region: str
    city: str
    ip: str

    def same_country(self, other: "Location") -> bool:
        return self.country == other.country

    def label(self) -> str:
        return f"{self.country}/{self.region}/{self.city}"


# (code, name, currency, standard VAT, reduced VAT rates, cities, eu)
_COUNTRY_ROWS: Sequence[Tuple[str, str, str, float, Tuple[float, ...], Tuple[str, ...], bool]] = [
    ("ES", "Spain", "EUR", 0.21, (0.10, 0.04), ("Madrid", "Barcelona", "Valencia", "Sevilla"), True),
    ("FR", "France", "EUR", 0.20, (0.10, 0.055, 0.021), ("Paris", "Lyon", "Marseille"), True),
    ("US", "United States", "USD", 0.0, (), ("Tennessee", "Massachusetts", "Washington", "New York", "California"), False),
    ("CH", "Switzerland", "CHF", 0.08, (0.025,), ("Zurich", "Geneva", "Bern"), False),
    ("DE", "Germany", "EUR", 0.19, (0.07,), ("Berlin", "Munich", "Hamburg"), True),
    ("BE", "Belgium", "EUR", 0.21, (0.12, 0.06), ("Brussels", "Antwerp"), True),
    ("GB", "United Kingdom", "GBP", 0.20, (0.05,), ("London", "Manchester", "Edinburgh"), True),
    ("NL", "Netherlands", "EUR", 0.21, (0.06,), ("Amsterdam", "Rotterdam"), True),
    ("CY", "Cyprus", "EUR", 0.19, (0.09, 0.05), ("Nicosia", "Limassol"), True),
    ("CA", "Canada", "CAD", 0.05, (), ("British Columbia", "Ontario", "Quebec"), False),
    ("NZ", "New Zealand", "NZD", 0.15, (), ("Dunedin", "Auckland"), False),
    ("PT", "Portugal", "EUR", 0.23, (0.13, 0.06), ("Lisbon", "Porto"), True),
    ("IE", "Ireland", "EUR", 0.23, (0.135, 0.09), ("Dublin", "Cork"), True),
    ("JP", "Japan", "JPY", 0.08, (), ("Tokyo", "Hiroshima", "Osaka"), False),
    ("CZ", "Czech Republic", "CZK", 0.21, (0.15, 0.10), ("Praha", "Brno"), True),
    ("KR", "Korea", "KRW", 0.10, (), ("Seoul", "Busan"), False),
    ("HK", "Hong Kong", "HKD", 0.0, (), ("Hong Kong",), False),
    ("BR", "Brazil", "BRL", 0.17, (), ("Sao Paulo", "Rio de Janeiro"), False),
    ("AU", "Australia", "AUD", 0.10, (), ("Sydney", "Melbourne"), False),
    ("SG", "Singapore", "SGD", 0.07, (), ("Singapore",), False),
    ("TH", "Thailand", "THB", 0.07, (), ("Bangkok", "Chiang Mai"), False),
    ("IL", "Israel", "ILS", 0.17, (), ("Beer-Sheva", "Tel Aviv"), False),
    ("SE", "Sweden", "SEK", 0.25, (0.12, 0.06), ("Scandinavia", "Stockholm"), True),
    ("IT", "Italy", "EUR", 0.22, (0.10, 0.04), ("Rome", "Milan"), True),
    ("AT", "Austria", "EUR", 0.20, (0.10,), ("Vienna", "Graz"), True),
    ("DK", "Denmark", "DKK", 0.25, (), ("Copenhagen",), True),
    ("NO", "Norway", "NOK", 0.25, (0.15,), ("Oslo",), False),
    ("FI", "Finland", "EUR", 0.24, (0.14, 0.10), ("Helsinki",), True),
    ("PL", "Poland", "PLN", 0.23, (0.08, 0.05), ("Warsaw", "Krakow"), True),
    ("GR", "Greece", "EUR", 0.24, (0.13, 0.06), ("Athens", "Thessaloniki"), True),
    ("RO", "Romania", "RON", 0.20, (0.09, 0.05), ("Bucharest",), True),
    ("HU", "Hungary", "HUF", 0.27, (0.18, 0.05), ("Budapest",), True),
    ("BG", "Bulgaria", "BGN", 0.20, (0.09,), ("Sofia",), True),
    ("HR", "Croatia", "HRK", 0.25, (0.13, 0.05), ("Zagreb",), True),
    ("SK", "Slovakia", "EUR", 0.20, (0.10,), ("Bratislava",), True),
    ("SI", "Slovenia", "EUR", 0.22, (0.095,), ("Ljubljana",), True),
    ("EE", "Estonia", "EUR", 0.20, (0.09,), ("Tallinn",), True),
    ("LV", "Latvia", "EUR", 0.21, (0.12,), ("Riga",), True),
    ("LT", "Lithuania", "EUR", 0.21, (0.09, 0.05), ("Vilnius",), True),
    ("LU", "Luxembourg", "EUR", 0.17, (0.14, 0.08), ("Luxembourg",), True),
    ("MT", "Malta", "EUR", 0.18, (0.07, 0.05), ("Valletta",), True),
    ("MX", "Mexico", "MXN", 0.16, (), ("Mexico City",), False),
    ("AR", "Argentina", "ARS", 0.21, (0.105,), ("Buenos Aires",), False),
    ("CL", "Chile", "CLP", 0.19, (), ("Santiago",), False),
    ("CO", "Colombia", "COP", 0.19, (0.05,), ("Bogota",), False),
    ("IN", "India", "INR", 0.18, (0.12, 0.05), ("Mumbai", "Delhi"), False),
    ("CN", "China", "CNY", 0.13, (0.09,), ("Beijing", "Shanghai"), False),
    ("TW", "Taiwan", "TWD", 0.05, (), ("Taipei",), False),
    ("MY", "Malaysia", "MYR", 0.06, (), ("Kuala Lumpur",), False),
    ("ID", "Indonesia", "IDR", 0.10, (), ("Jakarta",), False),
    ("PH", "Philippines", "PHP", 0.12, (), ("Manila",), False),
    ("ZA", "South Africa", "ZAR", 0.14, (), ("Cape Town", "Johannesburg"), False),
    ("TR", "Turkey", "TRY", 0.18, (0.08, 0.01), ("Istanbul", "Ankara"), False),
    ("RU", "Russia", "RUB", 0.18, (0.10,), ("Moscow", "Saint Petersburg"), False),
    ("UA", "Ukraine", "UAH", 0.20, (0.07,), ("Kyiv",), False),
    ("IS", "Iceland", "ISK", 0.24, (0.11,), ("Reykjavik",), False),
]


class GeoDatabase:
    """Deterministic GeoIP database over synthetic 10.x.0.0/16 blocks.

    Country ``i`` (in declaration order) owns ``10.i.0.0/16``.  Within a
    country, city ``j`` owns the ``10.i.j.0/24`` slice; host addresses are
    handed out sequentially by :meth:`allocate_ip`.
    """

    def __init__(self) -> None:
        self._countries: Dict[str, Country] = {}
        self._index: Dict[str, int] = {}
        for i, row in enumerate(_COUNTRY_ROWS):
            code, name, currency, std, reduced, cities, eu = row
            self._countries[code] = Country(
                code=code,
                name=name,
                currency=currency,
                vat_standard=std,
                vat_reduced=reduced,
                cities=cities,
                eu_member=eu,
            )
            self._index[code] = i
        self._next_host: Dict[Tuple[str, str], int] = {}

    # -- country metadata ------------------------------------------------
    @property
    def countries(self) -> List[Country]:
        return list(self._countries.values())

    def country(self, code: str) -> Country:
        try:
            return self._countries[code]
        except KeyError:
            raise KeyError(f"unknown country code {code!r}") from None

    def country_codes(self) -> List[str]:
        return list(self._countries)

    # -- IP allocation and lookup ----------------------------------------
    #: /24 blocks per city: city i owns third octets [8i, 8i+7], giving
    #: ~2000 addresses per city.
    BLOCKS_PER_CITY = 8

    def allocate_ip(self, country_code: str, city: Optional[str] = None) -> str:
        """Hand out the next unused address in the country/city block."""
        country = self.country(country_code)
        if city is None:
            city = country.cities[0] if country.cities else country.name
        if city not in country.cities:
            raise ValueError(f"{city!r} is not a known city of {country.name}")
        city_idx = country.cities.index(city)
        key = (country_code, city)
        host = self._next_host.get(key, 1)
        block, offset = divmod(host - 1, 254)
        if block >= self.BLOCKS_PER_CITY:
            raise RuntimeError(f"address block exhausted for {key}")
        self._next_host[key] = host + 1
        octet3 = city_idx * self.BLOCKS_PER_CITY + block
        return f"10.{self._index[country_code]}.{octet3}.{offset + 1}"

    def make_location(self, country_code: str, city: Optional[str] = None) -> Location:
        """Allocate an IP and build the full :class:`Location` for it."""
        country = self.country(country_code)
        if city is None:
            city = country.cities[0] if country.cities else country.name
        ip = self.allocate_ip(country_code, city)
        return Location(country=country_code, region=country.name, city=city, ip=ip)

    def lookup(self, ip: str) -> Location:
        """Reverse-map a synthetic address back to its location."""
        addr = ipaddress.ip_address(ip)
        octets = str(addr).split(".")
        if octets[0] != "10":
            raise KeyError(f"{ip} is outside the synthetic GeoIP space")
        country_idx = int(octets[1])
        city_idx = int(octets[2]) // self.BLOCKS_PER_CITY
        if country_idx >= len(_COUNTRY_ROWS):
            raise KeyError(f"{ip} does not map to a known country")
        code = _COUNTRY_ROWS[country_idx][0]
        country = self.country(code)
        if city_idx >= len(country.cities):
            raise KeyError(f"{ip} does not map to a known city of {country.name}")
        return Location(
            country=code,
            region=country.name,
            city=country.cities[city_idx],
            ip=ip,
        )
