"""A Tor-style anonymity channel for doppelganger state requests.

Sect. 3.7: "To prevent the Coordinator from learning to which centroid
a PPC maps, the PPC contacts the Coordinator through an anonymity
network to obtain the client-side state of the doppelganger."  The
bearer-token design exists *because* of this hop: the requester is
anonymous, so possession of the 256-bit doppelganger ID is the only
credential.

This module models a small onion-routed circuit: the sender wraps the
request in per-hop layers, each relay strips one layer and learns only
its predecessor and successor, and the exit delivers the payload to the
destination without any sender identity attached.  Layered sealing is
modelled with per-relay random pads (information-theoretic against our
honest-but-curious relays) — the point here is the *metadata* property,
which the tests assert: the destination observes the exit relay, never
the sender.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclass
class RelayObservation:
    """What one relay could write down about a forwarded message."""

    previous_hop: str
    next_hop: str


class Relay:
    """One onion relay: strips a layer, forwards the rest."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._pads: Dict[str, bytes] = {}
        self.observations: List[RelayObservation] = []

    # -- circuit setup -----------------------------------------------------
    def establish(self, circuit_id: str) -> bytes:
        """Key agreement for one circuit; returns the shared pad."""
        pad = secrets.token_bytes(32)
        self._pads[circuit_id] = pad
        return pad

    # -- forwarding ------------------------------------------------------------
    def peel(self, circuit_id: str, sealed: bytes) -> bytes:
        pad = self._pads.get(circuit_id)
        if pad is None:
            raise PermissionError(f"relay {self.name}: unknown circuit")
        return _xor(sealed, pad)

    def teardown(self, circuit_id: str) -> None:
        self._pads.pop(circuit_id, None)


def _xor(data: bytes, pad: bytes) -> bytes:
    return bytes(b ^ pad[i % len(pad)] for i, b in enumerate(data))


@dataclass
class AnonymousRequest:
    """What the destination receives: a payload and a reply path handle."""

    payload: Any
    exit_relay: str  # the only network identity visible to the server


class AnonymityNetwork:
    """A registry of relays plus circuit construction and sending."""

    def __init__(self, n_relays: int = 3) -> None:
        if n_relays < 1:
            raise ValueError("need at least one relay")
        self.relays: Dict[str, Relay] = {
            f"relay-{i}": Relay(f"relay-{i}") for i in range(n_relays)
        }

    def relay(self, name: str) -> Relay:
        return self.relays[name]

    def build_circuit(
        self, hops: Optional[Sequence[str]] = None
    ) -> "Circuit":
        if hops is None:
            hops = list(self.relays)
        if not hops:
            raise ValueError("empty circuit")
        return Circuit(self, [self.relays[h] for h in hops])


class Circuit:
    """One sender's onion circuit through an ordered list of relays."""

    def __init__(self, network: AnonymityNetwork, relays: List[Relay]) -> None:
        self._network = network
        self._relays = relays
        self.circuit_id = secrets.token_hex(8)
        # telescoping key establishment: the sender shares one pad per hop
        self._pads = [r.establish(self.circuit_id) for r in relays]

    @property
    def hops(self) -> List[str]:
        return [r.name for r in self._relays]

    def send(
        self,
        payload_bytes: bytes,
        destination: Callable[[AnonymousRequest], Any],
        sender_name: str = "sender",
    ) -> Any:
        """Onion-route the payload; returns the destination's response.

        Each relay records only (previous hop, next hop); the
        destination sees the exit relay, never ``sender_name``.
        """
        # seal inside-out: exit pad first, entry pad last
        sealed = payload_bytes
        for pad in reversed(self._pads):
            sealed = _xor(sealed, pad)
        previous = sender_name
        for i, relay in enumerate(self._relays):
            next_hop = (
                self._relays[i + 1].name if i + 1 < len(self._relays)
                else "destination"
            )
            relay.observations.append(
                RelayObservation(previous_hop=previous, next_hop=next_hop)
            )
            sealed = relay.peel(self.circuit_id, sealed)
            previous = relay.name
        if sealed != payload_bytes:
            raise RuntimeError("onion unwrapping failed")
        request = AnonymousRequest(
            payload=payload_bytes, exit_relay=self._relays[-1].name
        )
        return destination(request)

    def close(self) -> None:
        for relay in self._relays:
            relay.teardown(self.circuit_id)
