"""Fault injection for the $heriff measurement pipeline.

The deployed system survives exactly the failures a clean simulation
never exercises: PlanetLab IPC hosts going dark mid-crawl, Measurement
servers missing heartbeats and being marked offline, and flaky PPCs
returning partial results (Sect. 3.4, 5).  This module makes those
failures *first-class inputs*: a :class:`FaultPlan` is a seeded,
deterministic schedule of per-host / per-edge faults that every layer of
the request path consults —

* :class:`repro.net.sim.SimNetwork` (message delivery),
* :class:`repro.net.p2p.PeerOverlay` channels (PPC requests),
* :class:`repro.clients.ipc.InfrastructureProxyClient` fetches,
* the Coordinator's heartbeat/failover machinery
  (:mod:`repro.core.dispatch`, :mod:`repro.core.coordinator`).

Five fault kinds are supported:

``drop``     the message vanishes (connection refused / host gone);
``timeout``  the request hangs until the caller's deadline fires;
``delay``    a latency spike — the response arrives, late;
``flap``     the destination host goes dark for a window, missing
             heartbeats, then returns;
``corrupt``  the response arrives mangled (truncated HTML, missing
             fields).

All randomness flows from one injected :class:`random.Random`, so a
chaos run is exactly reproducible from its seed, and every injected
fault is appended to :attr:`FaultPlan.events` — two runs with the same
seed produce identical event logs (tested).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: canonical destination roles used by rule matching when the concrete
#: host name is opaque (peer IDs are random tokens)
ROLE_SERVER = "server"  # a Measurement server
ROLE_IPC = "ipc"        # an Infrastructure Proxy Client
ROLE_PPC = "ppc"        # a Peer Proxy Client
ROLE_STATE = "state"    # doppelganger state fetch via the anonymity net
ROLE_HOST = "host"      # a generic SimNetwork host

FAULT_KINDS = ("drop", "timeout", "delay", "flap", "corrupt")


class ProxyFetchError(RuntimeError):
    """An IPC page fetch failed (after exhausting its retry budget)."""


class ProxyTimeout(ProxyFetchError):
    """The per-proxy timeout fired before the IPC returned a page."""


class PeerTimeout(ConnectionError):
    """A PPC did not answer within the per-peer deadline."""


@dataclass(frozen=True)
class FaultRule:
    """One line of a chaos profile.

    ``src``/``dst`` are matched (``fnmatch``-style) against the edge's
    concrete endpoint names; ``dst`` additionally matches the
    destination's *role* (``server`` / ``ipc`` / ``ppc`` / ``state`` /
    ``host``) exactly, which is how profiles target "all peers" without
    knowing their opaque IDs.
    """

    kind: str
    probability: float
    dst: str = "*"
    src: str = "*"
    #: multiplier applied to the edge latency for ``delay`` faults
    delay_factor: float = 5.0
    #: how long a ``flap`` keeps the host dark, in simulated seconds
    flap_duration: float = 90.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability!r} not in [0, 1]")

    def matches(self, src: str, dst: str, role: Optional[str]) -> bool:
        if not (fnmatchcase(dst, self.dst) or self.dst == role):
            return False
        return fnmatchcase(src, self.src)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for the event log and the monitoring panel."""

    seq: int
    kind: str
    src: str
    dst: str
    detail: str = ""


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one delivery attempt."""

    kind: Optional[str] = None  # None = deliver cleanly
    delay_factor: float = 1.0

    def __bool__(self) -> bool:
        return self.kind is not None


CLEAN = FaultDecision()


class FaultStats:
    """Counters of injected faults, by kind (Fig. 7-style panel input)."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def bump(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def get(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def rows(self) -> List[Dict[str, object]]:
        return [
            {"Fault": kind, "Injected": self.counts[kind]}
            for kind in sorted(self.counts)
        ]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with jitter, for retry loops.

    ``delay(attempt, rng)`` returns ``min(cap, base * factor**attempt)``
    spread by ``±jitter`` — the classic decorrelation that keeps a fleet
    of retrying clients from stampeding a recovering server.
    """

    base: float = 0.5
    factor: float = 2.0
    cap: float = 30.0
    jitter: float = 0.1

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        raw = min(self.cap, self.base * self.factor ** max(0, attempt))
        if rng is None or self.jitter <= 0:
            return raw
        return raw * (1.0 + rng.uniform(-self.jitter, self.jitter))


class FaultPlan:
    """A deterministic, seeded schedule of faults.

    Every decision consumes the injected RNG in call order, so a
    single-threaded simulation replays identically from the same seed.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule] = (),
        seed: int = 0,
        rng: Optional[random.Random] = None,
        name: str = "custom",
    ) -> None:
        self.name = name
        self.rules: List[FaultRule] = list(rules)
        self.rng = rng if rng is not None else random.Random(seed)
        self.stats = FaultStats()
        self.events: List[FaultEvent] = []
        self._seq = itertools.count()
        self._flap_until: Dict[str, float] = {}
        self._m_injected = None

    def bind_telemetry(self, telemetry) -> None:
        """Re-emit every injected fault as a kind-labeled counter series.

        The counter is bumped inside :meth:`_record`, the single point
        every fault flows through, so the metric cannot drift from the
        event log the determinism tests compare.
        """
        self._bind_registry(telemetry.registry)

    def _bind_registry(self, registry) -> None:
        self._m_injected = registry.counter(
            "sheriff_faults_injected_total",
            "Faults injected, by kind", labelnames=("kind",),
        )
        for kind, count in self.stats.counts.items():
            # backfill faults injected before telemetry was attached
            self._m_injected.inc(count, kind=kind)

    # -- event log ---------------------------------------------------------
    def _record(self, kind: str, src: str, dst: str, detail: str = "") -> None:
        self.stats.bump(kind)
        if self._m_injected is not None:
            self._m_injected.inc(kind=kind)
        self.events.append(
            FaultEvent(seq=next(self._seq), kind=kind, src=src, dst=dst,
                       detail=detail)
        )

    def event_log(self) -> Tuple[FaultEvent, ...]:
        """Immutable snapshot, comparable across runs (determinism test)."""
        return tuple(self.events)

    # -- per-delivery decisions --------------------------------------------
    def decide(
        self,
        src: str,
        dst: str,
        role: Optional[str] = None,
        kinds: Sequence[str] = ("drop", "timeout", "delay", "corrupt"),
    ) -> FaultDecision:
        """Decide the fate of one delivery attempt on edge ``src → dst``.

        The first matching rule that fires wins; ``flap`` rules are
        handled by :meth:`host_down`, never here.
        """
        for rule in self.rules:
            if rule.kind not in kinds or rule.kind == "flap":
                continue
            if not rule.matches(src, dst, role):
                continue
            if self.rng.random() >= rule.probability:
                continue
            if rule.kind == "delay":
                self._record("delay", src, dst, f"x{rule.delay_factor:g}")
                return FaultDecision(kind="delay", delay_factor=rule.delay_factor)
            self._record(rule.kind, src, dst)
            return FaultDecision(kind=rule.kind)
        return CLEAN

    # -- host flapping ------------------------------------------------------
    def host_down(self, name: str, now: float, role: Optional[str] = None) -> bool:
        """Is ``name`` dark at simulated time ``now``?

        A host inside a flap window stays down until the window closes;
        otherwise each call gives every matching ``flap`` rule one draw
        to start a new window.
        """
        until = self._flap_until.get(name)
        if until is not None:
            if now < until:
                return True
            del self._flap_until[name]
        for rule in self.rules:
            if rule.kind != "flap" or not rule.matches("*", name, role):
                continue
            if self.rng.random() < rule.probability:
                self._flap_until[name] = now + rule.flap_duration
                self._record("flap", "*", name, f"{rule.flap_duration:g}s")
                return True
        return False

    def flapping_hosts(self, now: float) -> List[str]:
        """Hosts currently inside a flap window — a *pure read*, unlike
        :meth:`host_down`: no rule gets a draw, so supervisor health
        probes can poll it without perturbing the fault RNG stream."""
        return sorted(n for n, t in self._flap_until.items() if now < t)

    def end_flap(self, name: str) -> bool:
        """Close ``name``'s flap window now (RNG-free).

        Models an operator (or the :class:`repro.ops.supervisor`)
        replacing the flapped process: the restarted host answers its
        next heartbeat instead of serving out the window.  Returns
        whether a window was actually open.  Flap rules may still open
        a *new* window on a later :meth:`host_down` draw — a restart
        fixes the instance, not the rule causing the flapping.
        """
        return self._flap_until.pop(name, None) is not None

    # -- response corruption -------------------------------------------------
    def corrupt_text(self, text: str) -> str:
        """Truncate at a random point and splice garbage — the shape of a
        half-delivered HTTP body."""
        if not text:
            return "\x00"
        cut = self.rng.randrange(len(text))
        return text[:cut] + "\x00<!-- truncated by fault injection"

    def corrupt_reply(self, reply: Dict[str, Any]) -> Dict[str, Any]:
        """Mangle a PPC reply: either truncate the page or lose a field."""
        mangled = dict(reply)
        if "html" in mangled and self.rng.random() < 0.5:
            mangled["html"] = self.corrupt_text(str(mangled["html"]))
        else:
            for key in ("country", "region", "city", "html"):
                if key in mangled:
                    del mangled[key]
                    break
        return mangled


#: named chaos profiles — rule factories, seeded per run via chaos_plan()
CHAOS_PROFILES: Dict[str, Tuple[FaultRule, ...]] = {
    # a clean network: useful as an A/B control in benchmarks
    "none": (),
    # the Sect. 5 deployment on a bad day: one in ten peer requests is
    # lost and Measurement servers occasionally miss heartbeat windows
    "lossy": (
        FaultRule(kind="drop", probability=0.10, dst=ROLE_PPC),
        FaultRule(kind="flap", probability=0.05, dst=ROLE_SERVER,
                  flap_duration=90.0),
    ),
    # Mikians-style crowd measurement: volunteer peers are unreliable
    "flaky_peers": (
        FaultRule(kind="drop", probability=0.20, dst=ROLE_PPC),
        FaultRule(kind="timeout", probability=0.15, dst=ROLE_PPC),
        FaultRule(kind="corrupt", probability=0.10, dst=ROLE_PPC),
    ),
    # overloaded PlanetLab nodes: IPC fetches hang or crawl
    "degraded": (
        FaultRule(kind="timeout", probability=0.15, dst=ROLE_IPC),
        FaultRule(kind="delay", probability=0.20, dst=ROLE_IPC,
                  delay_factor=6.0),
        FaultRule(kind="drop", probability=0.05, dst=ROLE_PPC),
    ),
    # everything at once, at moderate rates
    "chaos_monkey": (
        FaultRule(kind="drop", probability=0.10, dst=ROLE_PPC),
        FaultRule(kind="corrupt", probability=0.05, dst=ROLE_PPC),
        FaultRule(kind="timeout", probability=0.10, dst=ROLE_IPC),
        FaultRule(kind="drop", probability=0.05, dst=ROLE_SERVER),
        FaultRule(kind="flap", probability=0.05, dst=ROLE_SERVER,
                  flap_duration=120.0),
        FaultRule(kind="drop", probability=0.10, dst=ROLE_STATE),
    ),
}


def chaos_plan(profile: str, seed: int = 0) -> FaultPlan:
    """Instantiate a named chaos profile with its own seeded RNG."""
    try:
        rules = CHAOS_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {profile!r}; "
            f"choose from {sorted(CHAOS_PROFILES)}"
        ) from None
    return FaultPlan(rules, seed=seed, name=profile)
