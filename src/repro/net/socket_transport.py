"""Real-socket transport: asyncio streams, length-prefixed JSON frames.

The second :class:`~repro.net.transport.Transport` backend.  Each bound
endpoint is an asyncio TCP server on the loopback (or a configured
interface); calls travel as the same
:class:`~repro.net.protocol.Request`/``Response`` envelopes the sim
transport uses, framed with a 4-byte big-endian length prefix.  All
asyncio machinery lives on a private event loop in a daemon thread so
the rest of the system keeps its synchronous call shape —
``transport.call`` blocks the calling thread exactly like
``SimNetwork.request`` blocks the sim.

Failure mapping (the contract the conformance suite pins):

* connect refused / reset / peer gone → :class:`NetworkError`
* connect or read deadline passed → :class:`NetworkTimeout`
* remote handler raised → :class:`RemoteCallError`
* frame above the size limit → :class:`FrameTooLarge` (sender-side,
  before any bytes move — identical to the sim path)

Reconnects reuse :class:`~repro.net.faults.BackoffPolicy`, the same
capped-exponential-with-jitter schedule the dispatch retry path uses.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.net.faults import BackoffPolicy
from repro.net.geo import Location
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    FrameTooLarge,
    ProtocolError,
    Request,
    Response,
    pack_frame,
    read_frame,
)
from repro.net.sim import NetworkError, NetworkTimeout
from repro.net.transport import (
    Handler,
    Transport,
    _raise_error_response,
    serve_request,
)

__all__ = ["SocketTransport"]


@dataclass
class _Endpoint:
    """One bound server: acceptor, address, and in-flight accounting."""

    name: str
    handler: Handler
    port: int = 0
    server: Optional[asyncio.AbstractServer] = None
    conns: Set[asyncio.StreamWriter] = field(default_factory=set)
    active: int = 0
    draining: bool = False
    idle: Optional[asyncio.Event] = None


@dataclass
class _Conn:
    """One pooled client connection (serialised by its lock)."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    lock: asyncio.Lock


class SocketTransport(Transport):
    """Transport over real TCP sockets on a private asyncio loop."""

    label = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        connect_timeout: float = 5.0,
        call_timeout: float = 30.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        backoff: Optional[BackoffPolicy] = None,
        reconnect_attempts: int = 3,
        handler_workers: int = 8,
        rng_seed: str = "socket-transport",
    ) -> None:
        self.host = host
        self.connect_timeout = connect_timeout
        self.call_timeout = call_timeout
        self.max_frame_bytes = max_frame_bytes
        self.backoff = backoff if backoff is not None else BackoffPolicy(
            base=0.05, factor=2.0, cap=1.0, jitter=0.2
        )
        self.reconnect_attempts = reconnect_attempts
        self._rng = random.Random(rng_seed)
        self._endpoints: Dict[str, _Endpoint] = {}
        self._peers: Dict[str, Tuple[str, int]] = {}
        self._clients: Set[str] = set()
        self._conns: Dict[Tuple[str, str], _Conn] = {}
        self._call_ids = itertools.count(1)
        self._closed = False
        self._telemetry = None
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=handler_workers, thread_name_prefix="transport-handler"
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="socket-transport", daemon=True
        )
        self._thread.start()

    # -- loop plumbing -----------------------------------------------------
    def _run(self, coro, timeout: Optional[float] = None):
        if self._closed:
            raise NetworkError("transport is closed")
        fut = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return fut.result(timeout)
        except concurrent.futures.TimeoutError:
            fut.cancel()
            raise NetworkTimeout("transport call abandoned (loop unresponsive)") from None
        except concurrent.futures.CancelledError:
            raise NetworkError("transport closed mid-call") from None

    # -- endpoint management ----------------------------------------------
    def bind(self, name: str, handler: Handler, location: Optional[Location] = None) -> None:
        if name in self._endpoints or name in self._clients:
            raise ValueError(f"duplicate endpoint name {name!r}")
        ep = _Endpoint(name=name, handler=handler)
        self._endpoints[name] = ep
        self._run(self._start_server(ep, port=0))
        self._peers[name] = (self.host, ep.port)

    async def _start_server(self, ep: _Endpoint, port: int) -> None:
        ep.idle = asyncio.Event()
        ep.idle.set()
        ep.draining = False
        ep.server = await asyncio.start_server(
            lambda r, w: self._serve_conn(ep, r, w), self.host, port
        )
        ep.port = ep.server.sockets[0].getsockname()[1]

    def register_client(self, name: str, location: Optional[Location] = None) -> None:
        if name in self._endpoints:
            raise ValueError(f"duplicate endpoint name {name!r}")
        self._clients.add(name)

    def connect_peer(self, name: str, host: str, port: int) -> None:
        """Record the address of an endpoint served by another process."""
        self._peers[name] = (host, port)

    def address_of(self, name: str) -> Tuple[str, int]:
        """The (host, port) a peer should dial to reach ``name``."""
        try:
            return self._peers[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def endpoints(self) -> List[str]:
        return sorted(set(self._endpoints) | self._clients | set(self._peers))

    def unbind(self, name: str) -> None:
        ep = self._endpoints.pop(name, None)
        self._clients.discard(name)
        self._peers.pop(name, None)
        if ep is not None:
            self._run(self._stop_server(ep, abort_conns=True))

    def take_offline(self, name: str) -> None:
        ep = self._endpoints.get(name)
        if ep is None:
            raise NetworkError(f"unknown host {name!r}")
        self._run(self._stop_server(ep, abort_conns=True))

    async def _stop_server(self, ep: _Endpoint, abort_conns: bool) -> None:
        if ep.server is not None:
            ep.server.close()
            await ep.server.wait_closed()
            ep.server = None
        if abort_conns:
            for writer in list(ep.conns):
                writer.close()
            ep.conns.clear()

    def restart_endpoint(self, name: str) -> None:
        """Rebind the endpoint's acceptor on its original port."""
        ep = self._endpoints.get(name)
        if ep is None:
            raise NetworkError(f"unknown host {name!r}")
        if ep.server is not None:
            return
        self._run(self._start_server(ep, port=ep.port))

    def drain(self, name: str, timeout: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, finish in-flight calls."""
        ep = self._endpoints.get(name)
        if ep is None:
            raise NetworkError(f"unknown host {name!r}")
        self._run(self._drain_async(ep), timeout=timeout + 5.0)

    async def _drain_async(self, ep: _Endpoint) -> None:
        ep.draining = True
        await self._stop_server(ep, abort_conns=False)
        if ep.idle is not None:
            await ep.idle.wait()
        for writer in list(ep.conns):
            writer.close()
        ep.conns.clear()

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._run(self._close_async(), timeout=10.0)
        except NetworkError:
            pass
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._pool.shutdown(wait=False)
        if not self._loop.is_running() and not self._loop.is_closed():
            self._loop.close()

    async def _close_async(self) -> None:
        for ep in self._endpoints.values():
            await self._stop_server(ep, abort_conns=True)
        for conn in self._conns.values():
            conn.writer.close()
        self._conns.clear()
        current = asyncio.current_task()
        for task in asyncio.all_tasks(self._loop):
            if task is not current:
                task.cancel()
        await asyncio.sleep(0)

    # -- server side -------------------------------------------------------
    async def _serve_conn(
        self, ep: _Endpoint, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        ep.conns.add(writer)
        try:
            while True:
                try:
                    envelope = await read_frame(reader, self.max_frame_bytes)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    ProtocolError,
                    OSError,
                ):
                    break
                if not isinstance(envelope, Request):
                    break
                if ep.draining and ep.active == 0:
                    break
                ep.active += 1
                if ep.idle is not None:
                    ep.idle.clear()
                try:
                    if self._telemetry:
                        self._telemetry.received(len(pack_frame(envelope)) - 4)
                    resp = await self._loop.run_in_executor(
                        self._pool, serve_request, ep.handler, envelope
                    )
                    try:
                        frame = pack_frame(resp, self.max_frame_bytes)
                    except FrameTooLarge as exc:
                        frame = pack_frame(
                            Response(
                                envelope.call_id,
                                ok=False,
                                error_kind="network",
                                error_message=str(exc),
                            )
                        )
                    writer.write(frame)
                    if self._telemetry:
                        self._telemetry.sent(len(frame) - 4)
                    await writer.drain()
                finally:
                    ep.active -= 1
                    if ep.active == 0 and ep.idle is not None:
                        ep.idle.set()
        finally:
            ep.conns.discard(writer)
            writer.close()

    # -- client side -------------------------------------------------------
    async def _connect(self, src: str, dst: str) -> _Conn:
        key = (src, dst)
        conn = self._conns.get(key)
        if conn is not None and not conn.writer.is_closing():
            return conn
        host, port = self._peers.get(dst, (None, None))
        if host is None:
            raise NetworkError(f"unknown host {dst!r}")
        last_error: Optional[BaseException] = None
        for attempt in range(self.reconnect_attempts):
            if attempt > 0:
                if self._telemetry:
                    self._telemetry.reconnected()
                await asyncio.sleep(self.backoff.delay(attempt, self._rng))
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), self.connect_timeout
                )
            except asyncio.TimeoutError as exc:
                raise NetworkTimeout(
                    f"connect {src!r} → {dst!r} timed out after {self.connect_timeout:g}s"
                ) from exc
            except (ConnectionError, OSError) as exc:
                last_error = exc
                continue
            conn = _Conn(reader=reader, writer=writer, lock=asyncio.Lock())
            self._conns[key] = conn
            return conn
        raise NetworkError(f"host {dst!r} is offline ({last_error})")

    async def _call_async(
        self, req: Request, frame: bytes, timeout: float
    ) -> Response:
        attempts = 2  # one transparent retry if a pooled conn went stale
        for attempt in range(attempts):
            conn = await self._connect(req.src, req.dst)
            async with conn.lock:
                try:
                    conn.writer.write(frame)
                    await conn.writer.drain()
                    envelope = await asyncio.wait_for(
                        read_frame(conn.reader, self.max_frame_bytes), timeout
                    )
                except asyncio.TimeoutError as exc:
                    conn.writer.close()
                    self._conns.pop((req.src, req.dst), None)
                    raise NetworkTimeout(
                        f"call {req.src!r} → {req.dst!r} {req.method!r} "
                        f"timed out after {timeout:g}s"
                    ) from exc
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                ) as exc:
                    conn.writer.close()
                    self._conns.pop((req.src, req.dst), None)
                    if attempt + 1 < attempts:
                        if self._telemetry:
                            self._telemetry.reconnected()
                        continue
                    raise NetworkError(
                        f"connection {req.src!r} → {req.dst!r} lost: {exc}"
                    ) from exc
            if not isinstance(envelope, Response) or envelope.call_id != req.call_id:
                conn.writer.close()
                self._conns.pop((req.src, req.dst), None)
                raise NetworkError(
                    f"desynchronised reply on {req.src!r} → {req.dst!r}"
                )
            return envelope
        raise NetworkError(f"call {req.src!r} → {req.dst!r} failed")  # pragma: no cover

    def call(
        self,
        src: str,
        dst: str,
        method: str,
        payload: Any = None,
        timeout: Optional[float] = None,
    ) -> Any:
        if self._closed:
            raise NetworkError("transport is closed")
        if src not in self._clients and src not in self._endpoints:
            raise NetworkError(f"unknown host {src!r}")
        req = Request(
            call_id=next(self._call_ids), src=src, dst=dst, method=method, payload=payload
        )
        try:
            frame = pack_frame(req, self.max_frame_bytes)
        except FrameTooLarge:
            if self._telemetry:
                self._telemetry.failed("frame_too_large")
            raise
        deadline = timeout if timeout is not None else self.call_timeout
        started = time.perf_counter()
        if self._telemetry:
            self._telemetry.sent(len(frame) - 4)
        try:
            resp = self._run(
                self._call_async(req, frame, deadline),
                timeout=deadline + self.connect_timeout * self.reconnect_attempts + 10.0,
            )
        except NetworkTimeout:
            if self._telemetry:
                self._telemetry.failed("timeout")
            raise
        except NetworkError:
            if self._telemetry:
                self._telemetry.failed("network")
            raise
        elapsed = time.perf_counter() - started
        if self._telemetry:
            self._telemetry.received(len(pack_frame(resp)) - 4)
            self._telemetry.observed_call(method, elapsed)
        if not resp.ok:
            if self._telemetry:
                self._telemetry.failed(resp.error_kind or "remote")
            _raise_error_response(resp)
        return resp.result
