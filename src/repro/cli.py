"""Command-line interface: ``python -m repro …``.

Gives the library a tool-shaped front door:

* ``demo``        — the quickstart price check on a small world;
* ``reproduce``   — regenerate one (or all) tables/figures;
* ``perf``        — print Table 1 from the performance model;
* ``geoblock``    — scan a demo URL for geoblocking;
* ``panels``      — render the Fig. 7 / Fig. 16 monitoring panels;
* ``chaos``       — run a deployment under a named fault-injection
  profile and report resolution/recovery counters (add
  ``--supervised`` to run it under the self-healing layer);
* ``supervise``   — run a supervised deployment under chaos and report
  the healing verdict: the ops panel, the heal report, and the audit
  trail; exits non-zero if the deployment did not converge;
* ``throughput``  — benchmark serial vs pipelined price-check
  execution and emit ``BENCH_throughput.json`` (add ``--mesh`` to also
  run the engine across real worker processes and record wall-clock
  checks/sec next to the sim numbers);
* ``mesh``        — launch a real-process deployment: N measurement
  worker processes behind the socket transport, handshake + heartbeat
  + a farmed workload + graceful drain;
* ``storagebench`` — benchmark the storage engines (scan vs index,
  one shard vs many) and emit ``BENCH_storage.json``;
* ``cryptobench`` — benchmark the secure k-means crypto (naive vs
  fastexp, 1 vs N workers) and emit ``BENCH_crypto.json``;
* ``parsebench``  — benchmark the single-pass Tags-Path extraction
  engine against the legacy per-candidate walk (with the in-run
  fast==legacy lockstep check) and emit ``BENCH_parse.json``;
* ``bench``       — run the whole benchmark suite (any subset of
  throughput/storage/crypto/scale/parse), merge the reports into
  ``BENCH_all.json``, and evaluate every regression gate in one exit
  code;
* ``metrics``     — run a telemetry-on deployment and emit its
  Prometheus-style metrics exposition;
* ``trace``       — same run, render one price check's span timeline
  on the simulated clock (and optionally export span JSONL);
* ``journey``     — run the seeded forced-steal drill and reconstruct
  one job's end-to-end causal tree (admission → queue → steal → fetch
  → persist) with critical-path analysis and its flight-recorder log;
* ``slo``         — same drill under armed SLO burn-rate probes;
  reports objective compliance and any pages (add ``--latency-fault``
  to watch the latency budget burn);
* ``panel``       — the live operator view: pipeline health plus the
  Fig. 7 / Fig. 16 panels, all from a metrics snapshot.

Everything except ``mesh`` (and ``throughput --mesh``) runs against the
simulated world; the CLI exists so the reproduction can be driven
without writing Python.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, Sequence

EXPERIMENT_CHOICES = (
    "table1", "table2", "table3", "table4", "table5",
    "fig2", "fig5", "fig8a", "fig8b", "fig8c", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14-15", "sec75", "sec76", "all",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Price $heriff — SIGCOMM'17 reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a demo price check")
    demo.add_argument("--country", default="ES",
                      help="initiator country (ISO code)")
    demo.add_argument("--currency", default="EUR",
                      help="currency the result page converts into")
    demo.add_argument("--chaos", default=None, metavar="PROFILE",
                      help="run the check under a named chaos profile")
    demo.add_argument("--chaos-seed", type=int, default=0)

    reproduce = sub.add_parser("reproduce",
                               help="regenerate a table/figure (or all)")
    reproduce.add_argument("experiment", choices=EXPERIMENT_CHOICES)
    reproduce.add_argument("--scale", default="test",
                           choices=("test", "default", "paper"))
    reproduce.add_argument("--out", default=None,
                           help="also write a markdown report to this path")

    sub.add_parser("perf", help="print Table 1 from the queueing model")

    sub.add_parser("geoblock", help="demo geoblocking scan")

    sub.add_parser("panels", help="render the admin monitoring panels")

    watch = sub.add_parser("watch", help="demo watchdog monitoring run")
    watch.add_argument("--days", type=int, default=12,
                       help="how many daily cycles to simulate")

    from repro.net.faults import CHAOS_PROFILES

    chaos = sub.add_parser(
        "chaos", help="deployment run under fault injection"
    )
    chaos.add_argument("--profile", default="lossy",
                       choices=sorted(CHAOS_PROFILES),
                       help="named fault-injection profile")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed of the fault plan's RNG")
    chaos.add_argument("--requests", type=int, default=60,
                       help="price checks to attempt")
    chaos.add_argument("--users", type=int, default=30,
                       help="size of the simulated population")
    chaos.add_argument("--quorum", type=int, default=1,
                       help="minimum vantage points per accepted result")
    chaos.add_argument("--supervised", action="store_true",
                       help="run under the self-healing operations layer")

    supervise = sub.add_parser(
        "supervise",
        help="supervised chaos run: heal, audit, and report the verdict",
    )
    supervise.add_argument("--chaos", default="chaos_monkey",
                           choices=sorted(CHAOS_PROFILES),
                           help="named fault-injection profile")
    supervise.add_argument("--seed", type=int, default=0,
                           help="seed of the fault plan's RNG")
    supervise.add_argument("--requests", type=int, default=60,
                           help="price checks to attempt")
    supervise.add_argument("--users", type=int, default=30,
                           help="size of the simulated population")
    supervise.add_argument("--audit-out", default=None, metavar="JSONL",
                           help="persist the ops audit trail to this file")
    supervise.add_argument("--config", default=None, metavar="JSON",
                           help="load the DeploymentConfig from this JSON "
                                "file (CLI flags override it)")

    throughput = sub.add_parser(
        "throughput",
        help="benchmark serial vs pipelined price-check throughput",
    )
    throughput.add_argument("--scale", default="default",
                            choices=("smoke", "default"),
                            help="smoke = reduced CI instance")
    throughput.add_argument("--users", type=int, nargs="+", default=None,
                            help="concurrency levels to sweep (overrides scale)")
    throughput.add_argument("--checks", type=int, default=None,
                            help="price checks per level")
    throughput.add_argument("--ipcs", type=int, default=None,
                            help="IPC fleet size (max 30)")
    throughput.add_argument("--servers", type=int, default=None,
                            help="number of Measurement servers")
    throughput.add_argument("--workers", type=int, default=None,
                            help="fetch workers per server (pipelined)")
    throughput.add_argument("--cache-ttl", type=float, default=None,
                            help="page cache TTL in simulated seconds")
    throughput.add_argument("--seed", type=int, default=None)
    throughput.add_argument("--out", default="BENCH_throughput.json",
                            help="where to write the JSON report")
    throughput.add_argument("--require-speedup", type=float, default=None,
                            metavar="X",
                            help="exit 1 unless the top-level speedup > X")
    throughput.add_argument("--trace-out", default=None, metavar="JSONL",
                            help="run one traced pipelined sweep and export "
                                 "its span log to this JSONL file")
    throughput.add_argument("--metrics-out", default=None, metavar="PROM",
                            help="write the traced run's metrics exposition "
                                 "to this file (implies a traced run)")
    throughput.add_argument("--max-telemetry-overhead", type=float,
                            default=None, metavar="FRACTION",
                            help="measure telemetry-on vs telemetry-off "
                                 "wall time; exit 1 if the overhead "
                                 "fraction exceeds this bound")
    throughput.add_argument("--mesh", action="store_true",
                            help="also run the pipelined engine across "
                                 "real worker processes and record "
                                 "wall-clock checks/sec in the report")
    throughput.add_argument("--mesh-workers", type=int, default=2,
                            metavar="N",
                            help="worker processes for the --mesh run")
    throughput.add_argument("--require-mesh-rate", type=float, default=None,
                            metavar="X",
                            help="exit 1 unless the --mesh run completes "
                                 "every check at >= X checks/sec wall")

    mesh = sub.add_parser(
        "mesh",
        help="launch a real-process deployment: worker processes behind "
             "the socket transport",
    )
    mesh.add_argument("--servers", type=int, default=2, metavar="N",
                      help="worker processes to launch")
    mesh.add_argument("--checks", type=int, default=8,
                      help="price checks to farm across the fleet")
    mesh.add_argument("--concurrency", type=int, default=None,
                      help="concurrent in-flight calls (default: 4/worker)")
    mesh.add_argument("--seed", type=int, default=2017)
    mesh.add_argument("--stores", type=int, default=2,
                      help="stores per worker's world")
    mesh.add_argument("--ipcs", type=int, default=6,
                      help="IPC fleet size per worker (max 30)")
    mesh.add_argument("--users", type=int, default=4,
                      help="browser addons per worker")
    mesh.add_argument("--out", default=None, metavar="JSON",
                      help="also write the mesh report as JSON")

    scalebench = sub.add_parser(
        "scalebench",
        help="benchmark checks/sec scaling with the Measurement-server "
             "fleet size (queued dispatch), plus a 1k-1M user projection",
    )
    scalebench.add_argument("--scale", default="default",
                            choices=("smoke", "default"),
                            help="smoke = reduced CI instance")
    scalebench.add_argument("--servers", type=int, nargs="+", default=None,
                            help="fleet sizes to sweep (e.g. 1 2 4 8)")
    scalebench.add_argument("--checks", type=int, default=None,
                            help="price checks per fleet size")
    scalebench.add_argument("--users", type=int, default=None,
                            help="concurrent submitters per wave")
    scalebench.add_argument("--users-levels", type=int, nargs="+",
                            default=None,
                            help="population levels of the projection sweep")
    scalebench.add_argument("--ipcs", type=int, default=None,
                            help="IPC fleet size (max 30)")
    scalebench.add_argument("--seed", type=int, default=None)
    scalebench.add_argument("--config", default=None, metavar="JSON",
                            help="load the ScaleBenchConfig from this JSON "
                                 "file (CLI flags override it)")
    scalebench.add_argument("--out", default="BENCH_scale.json",
                            help="where to write the JSON report")
    scalebench.add_argument("--require-scaling", type=float, default=None,
                            metavar="X",
                            help="exit 1 unless checks/sec at the largest "
                                 "fleet is at least X times the baseline")

    storagebench = sub.add_parser(
        "storagebench",
        help="benchmark storage engines: scan vs index, 1 vs N shards",
    )
    storagebench.add_argument("--scale", default="default",
                              choices=("smoke", "default"),
                              help="smoke = reduced CI instance")
    storagebench.add_argument("--jobs", type=int, default=None,
                              help="distinct jobs written")
    storagebench.add_argument("--responses-per-job", type=int, default=None,
                              help="response rows per job")
    storagebench.add_argument("--queries", type=int, default=None,
                              help="lookups timed per pass")
    storagebench.add_argument("--backends", nargs="+", default=None,
                              choices=("memory", "sqlite"),
                              help="storage engines to compare")
    storagebench.add_argument("--shards", type=int, nargs="+", default=None,
                              help="shard counts to compare")
    storagebench.add_argument("--seed", type=int, default=None)
    storagebench.add_argument("--out", default="BENCH_storage.json",
                              help="where to write the JSON report")
    storagebench.add_argument("--require-index-speedup", type=float,
                              default=None, metavar="X",
                              help="exit 1 unless every engine's indexed "
                                   "path beats the scan by more than X")

    cryptobench = sub.add_parser(
        "cryptobench",
        help="benchmark the secure k-means crypto: naive vs fastexp, "
             "1 vs N workers",
    )
    cryptobench.add_argument("--scale", default="default",
                             choices=("smoke", "default"),
                             help="smoke = reduced CI instance")
    cryptobench.add_argument("--clients", type=int, default=None,
                             help="encrypted client profiles")
    cryptobench.add_argument("--dims", type=int, default=None,
                             help="profile dimensionality m")
    cryptobench.add_argument("--clusters", type=int, default=None,
                             help="number of centroids k")
    cryptobench.add_argument("--groups", nargs="+", default=None,
                             choices=("test", "bench256", "rfc3526"),
                             help="group parameter sets to sweep")
    cryptobench.add_argument("--workers", type=int, nargs="+", default=None,
                             help="worker-process counts to sweep")
    cryptobench.add_argument("--repeats", type=int, default=None,
                             help="best-of repeats per timed pass")
    cryptobench.add_argument("--seed", type=int, default=None)
    cryptobench.add_argument("--out", default="BENCH_crypto.json",
                             help="where to write the JSON report")
    cryptobench.add_argument("--require-speedup", type=float, default=None,
                             metavar="X",
                             help="exit 1 unless the encrypt+distance "
                                  "speedup (test group, 1 worker) exceeds X "
                                  "and the naive/fast lockstep check held")

    parsebench = sub.add_parser(
        "parsebench",
        help="benchmark Tags-Path extraction: legacy per-candidate walk "
             "vs the single-pass indexed engine",
    )
    parsebench.add_argument("--scale", default="default",
                            choices=("smoke", "default"),
                            help="smoke = reduced CI instance")
    parsebench.add_argument("--layouts", type=int, default=None,
                            help="distinct store layouts in the corpus")
    parsebench.add_argument("--vantages", type=int, default=None,
                            help="fetched pages per recorded path")
    parsebench.add_argument("--duplicate-fraction", type=float, default=None,
                            metavar="F",
                            help="fraction of vantages with byte-identical "
                                 "pages (the memo's common case)")
    parsebench.add_argument("--repeats", type=int, default=None,
                            help="best-of repeats per timed pass")
    parsebench.add_argument("--seed", type=int, default=None)
    parsebench.add_argument("--out", default="BENCH_parse.json",
                            help="where to write the JSON report")
    parsebench.add_argument("--require-speedup", type=float, default=None,
                            metavar="X",
                            help="exit 1 unless the fast engine beats the "
                                 "legacy walk by more than X and the "
                                 "fast/legacy lockstep check held")

    bench = sub.add_parser(
        "bench",
        help="run the unified benchmark suite, gate every regression",
    )
    bench.add_argument("--scale", default="smoke",
                       choices=("smoke", "default"),
                       help="smoke = reduced CI instance")
    bench.add_argument("--include", nargs="+", default=None,
                       choices=("throughput", "storage", "crypto", "scale",
                                "parse", "mesh"),
                       help="benchmarks to run (default: the five sim "
                            "benchmarks; 'mesh' spawns real processes)")
    bench.add_argument("--seed", type=int, default=None)
    bench.add_argument("--out", default="BENCH_all.json",
                       help="where to write the merged JSON report")
    bench.add_argument("--require-throughput-speedup", type=float,
                       default=1.0, metavar="X",
                       help="pipelined must beat serial by more than X")
    bench.add_argument("--max-telemetry-overhead", type=float, default=None,
                       metavar="FRACTION",
                       help="also measure the full telemetry plane's "
                            "wall-clock cost and gate it at this fraction")
    bench.add_argument("--require-index-speedup", type=float, default=5.0,
                       metavar="X",
                       help="every engine's index must beat the scan by "
                            "more than X")
    bench.add_argument("--require-crypto-speedup", type=float, default=3.0,
                       metavar="X",
                       help="fastexp must beat naive by more than X "
                            "(lockstep must also hold)")
    bench.add_argument("--require-scaling", type=float, default=3.0,
                       metavar="X",
                       help="top fleet must scale by at least X")
    bench.add_argument("--require-parse-speedup", type=float, default=3.0,
                       metavar="X",
                       help="the fast extraction engine must beat the "
                            "legacy walk by more than X (lockstep must "
                            "also hold)")

    def add_telemetry_run_args(p, requests=24, users=12):
        p.add_argument("--chaos", default="lossy", metavar="PROFILE",
                       help="chaos profile of the instrumented run "
                            "('none' = clean network)")
        p.add_argument("--seed", type=int, default=0,
                       help="seed of the fault plan's RNG")
        p.add_argument("--requests", type=int, default=requests,
                       help="price checks to attempt")
        p.add_argument("--users", type=int, default=users,
                       help="size of the simulated population")

    metrics = sub.add_parser(
        "metrics",
        help="run a telemetry-on deployment, emit Prometheus exposition",
    )
    add_telemetry_run_args(metrics)
    metrics.add_argument("--out", default=None,
                         help="write the exposition here instead of stdout")

    trace = sub.add_parser(
        "trace", help="render one price check's span timeline"
    )
    add_telemetry_run_args(trace)
    trace.add_argument("--job", type=int, default=-1, metavar="N",
                       help="which traced job to render (index into the "
                            "run's trace list; default: the last one)")
    trace.add_argument("--out", default=None, metavar="JSONL",
                       help="also export every span as JSON lines")

    journey = sub.add_parser(
        "journey",
        help="reconstruct one job's end-to-end causal tree from the "
             "seeded forced-steal drill",
    )
    journey.add_argument("job", nargs="?", default=None,
                         help="job id to reconstruct (default: the first "
                              "stolen job of the drill)")
    journey.add_argument("--list", action="store_true",
                         help="list the drill's job ids (stolen ones "
                              "marked) and exit")
    journey.add_argument("--seed", type=int, default=71,
                         help="seed of the drill's world")
    journey.add_argument("--latency-fault", action="store_true",
                         help="run the drill under the injected latency "
                              "fault (slow vantage points)")
    journey.add_argument("--out", default=None, metavar="JSON",
                         help="also export the journey record (spans, "
                              "flight events, ticket) as JSON")

    slo = sub.add_parser(
        "slo",
        help="run the drill under armed SLO burn-rate probes and report "
             "objective compliance",
    )
    slo.add_argument("--seed", type=int, default=71,
                     help="seed of the drill's world")
    slo.add_argument("--latency-fault", action="store_true",
                     help="inject the latency fault the burn-rate probe "
                          "pages on")
    slo.add_argument("--max-burn-rate", type=float, default=1.0,
                     metavar="X",
                     help="alerting multiple of the error-budget burn")
    slo.add_argument("--out", default=None, metavar="JSON",
                     help="write the SLO report as JSON")
    slo.add_argument("--require-met", action="store_true",
                     help="exit 1 unless every objective is met and no "
                          "burn-rate alert fired")

    panel = sub.add_parser(
        "panel", help="live operator panels from a metrics snapshot"
    )
    add_telemetry_run_args(panel)

    return parser


def _demo_world(chaos_profile=None, chaos_seed=0):
    from repro.core.sheriff import PriceSheriff, SheriffWorld
    from repro.web.catalog import make_catalog
    from repro.web.pricing import CountryMultiplierPricing
    from repro.web.store import EStore

    world = SheriffWorld.create(seed=7)
    store = EStore(
        domain="demo-store.example", country_code="US",
        catalog=make_catalog("demo-store.example", size=5,
                             rng=random.Random(1)),
        pricing=CountryMultiplierPricing({"CA": 1.3, "JP": 1.15}),
        geodb=world.geodb, rates=world.rates, currency_strategy="geo",
    )
    world.internet.register(store)
    sheriff = PriceSheriff(world, n_measurement_servers=1,
                           chaos_profile=chaos_profile,
                           chaos_seed=chaos_seed)
    return world, sheriff, store


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.addon import PriceCheckFailed

    world, sheriff, store = _demo_world(
        chaos_profile=getattr(args, "chaos", None),
        chaos_seed=getattr(args, "chaos_seed", 0),
    )
    addon = sheriff.install_addon(world.make_browser(args.country))
    for _ in range(2):  # a couple of same-country peers
        sheriff.install_addon(world.make_browser(args.country))
    try:
        result = addon.check_price(
            store.product_url(store.catalog.products[0].product_id),
            requested_currency=args.currency,
        )
    except PriceCheckFailed as exc:
        print(f"price check failed under chaos: {exc}")
        return 1
    print(result.render_result_page())
    if getattr(args, "chaos", None):
        from repro.core.admin import AdminConsole

        print()
        print(AdminConsole(sheriff).faults_panel())
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import (
        fig2_result_page, fig5_adoption, fig8_clustering, fig9_live_domains,
        fig10_ratio, fig11_crawl, fig12_country_cases, fig13_peer_bias,
        fig14_15_temporal, sec75_ab_stats, sec76_alexa400,
        table1_performance, table2_countries, table3_extremes,
        table4_country_rank, table5_percentages,
    )

    runners = {
        "table1": lambda s: table1_performance.run(s),
        "table2": lambda s: table2_countries.run(s),
        "table3": lambda s: table3_extremes.run(s),
        "table4": lambda s: table4_country_rank.run(s),
        "table5": lambda s: table5_percentages.run(s),
        "fig2": lambda s: fig2_result_page.run(s),
        "fig5": lambda s: fig5_adoption.run(s),
        "fig8a": lambda s: fig8_clustering.run_fig8a(s),
        "fig8b": lambda s: fig8_clustering.run_fig8b(s),
        "fig8c": lambda s: fig8_clustering.run_fig8c(s),
        "fig9": lambda s: fig9_live_domains.run(s),
        "fig10": lambda s: fig10_ratio.run(s),
        "fig11": lambda s: fig11_crawl.run(s),
        "fig12": lambda s: fig12_country_cases.run(s),
        "fig13": lambda s: fig13_peer_bias.run(s),
        "fig14-15": lambda s: fig14_15_temporal.run(s),
        "sec75": lambda s: sec75_ab_stats.run(s),
        "sec76": lambda s: sec76_alexa400.run(s),
    }
    selected = (
        list(runners.items())
        if args.experiment == "all"
        else [(args.experiment, runners[args.experiment])]
    )
    sections = []
    for name, runner in selected:
        rendered = runner(args.scale).render()
        if len(selected) > 1:
            print(f"\n=== {name} ===")
        print(rendered)
        sections.append((name, rendered))
    if args.out:
        from repro.analysis.report_writer import write_markdown_report

        path = write_markdown_report(sections, args.out, scale=args.scale)
        print(f"\nreport written to {path}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.experiments import table1_performance

    print(table1_performance.run("test").render())
    return 0


def _cmd_geoblock(args: argparse.Namespace) -> int:
    from repro.core.sheriff import PriceSheriff, SheriffWorld
    from repro.extensions.geoblock import GeoblockScanner
    from repro.web.catalog import make_catalog
    from repro.web.pricing import UniformPricing
    from repro.web.store import EStore

    world = SheriffWorld.create(seed=9)
    store = EStore(
        domain="regional.example", country_code="US",
        catalog=make_catalog("regional.example", size=3,
                             rng=random.Random(2)),
        pricing=UniformPricing(), geodb=world.geodb, rates=world.rates,
        blocked_countries=("DE", "FR"),
    )
    world.internet.register(store)
    sheriff = PriceSheriff(world, n_measurement_servers=1)
    scanner = GeoblockScanner(sheriff)
    report = scanner.scan(
        store.product_url(store.catalog.products[0].product_id)
    )
    print(report.render())
    return 0


def _cmd_panels(args: argparse.Namespace) -> int:
    from repro.core.admin import AdminConsole

    world, sheriff, _ = _demo_world()
    sheriff.install_addon(world.make_browser("ES", "Madrid"))
    sheriff.install_addon(world.make_browser("FR", "Paris"))
    console = AdminConsole(sheriff)
    print(console.servers_panel())
    print()
    print(console.peers_panel())
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.core.watchdog import Watchdog
    from repro.web.pricing import CountryMultiplierPricing, PricingPolicy

    class TurnsBadOnDay8(PricingPolicy):
        def adjustments(self, product, ctx):
            if ctx.day >= 8:
                return CountryMultiplierPricing(
                    {"JP": 1.3}
                ).adjustments(product, ctx)
            return []

    world, sheriff, store = _demo_world()
    store.pricing = TurnsBadOnDay8()
    monitor = sheriff.install_addon(world.make_browser("ES", "Madrid"))
    watchdog = Watchdog(monitor, world.geodb)
    url = store.product_url(store.catalog.products[0].product_id)
    watchdog.add_watch(url)
    print(f"watching {url} for {args.days} days")
    for day in range(args.days):
        for alert in watchdog.run_cycle():
            print(f"day {day:2d}  ALERT  {alert.describe()}")
        world.clock.advance_days(1)
    print("done;", len(watchdog.history(url)), "observations recorded")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.core.admin import AdminConsole
    from repro.workloads.deployment import DeploymentConfig, LiveDeployment

    config = DeploymentConfig.test_scale()
    config.n_users = args.users
    config.n_requests = args.requests
    config.chaos_profile = args.profile
    config.chaos_seed = args.seed
    config.quorum = args.quorum
    config.supervised = args.supervised
    print(f"chaos drill: profile={args.profile!r} seed={args.seed} "
          f"requests={args.requests} users={args.users} quorum={args.quorum}"
          + (" [supervised]" if args.supervised else ""))
    dataset = LiveDeployment(config).run()
    print(f"attempted          {dataset.n_attempted}")
    print(f"result pages       {len(dataset.results)}")
    print(f"explicit failures  {dataset.n_explicit_failures}")
    print(f"resolution rate    {dataset.resolution_rate:.1%}")
    console = AdminConsole(dataset.sheriff)
    print()
    print(console.faults_panel())
    print()
    print(console.servers_panel())
    if dataset.supervisor is not None:
        print()
        print(console.ops_panel(dataset.supervisor))
    return 0


def _load_config_json(path: str, parse):
    """Load a run config from a JSON file through a validating parser.

    Returns None (after printing the reason) when the file is missing,
    malformed JSON, or fails the parser's validation.
    """
    import json

    from repro.core.errors import InvalidConfig

    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as exc:
        print(f"FAIL: cannot read config {path}: {exc}")
        return None
    except json.JSONDecodeError as exc:
        print(f"FAIL: config {path} is not valid JSON: {exc}")
        return None
    try:
        return parse(data)
    except InvalidConfig as exc:
        print(f"FAIL: invalid config {path}: {exc}")
        return None


def _cmd_supervise(args: argparse.Namespace) -> int:
    from repro.core.monitoring import ops_panel
    from repro.workloads.deployment import DeploymentConfig, LiveDeployment

    if args.config is not None:
        config = _load_config_json(args.config, DeploymentConfig.from_dict)
        if config is None:
            return 1
    else:
        config = DeploymentConfig.test_scale()
    config.n_users = args.users
    config.n_requests = args.requests
    config.chaos_profile = (
        None if args.chaos in (None, "none") else args.chaos
    )
    config.chaos_seed = args.seed
    config.supervised = True
    config.audit_path = args.audit_out
    print(f"supervised run: chaos={args.chaos!r} seed={args.seed} "
          f"requests={args.requests} users={args.users}")
    dataset = LiveDeployment(config).run()
    supervisor = dataset.supervisor
    heal = dataset.heal_report

    print(f"attempted          {dataset.n_attempted}")
    print(f"result pages       {len(dataset.results)}")
    print(f"explicit failures  {dataset.n_explicit_failures}")
    print(f"resolution rate    {dataset.resolution_rate:.1%}")
    print()
    print(ops_panel(supervisor))
    print()
    print("audit trail:")
    for kind, count in sorted(supervisor.audit.counts().items()):
        print(f"  {kind:<26} {count}")
    if args.audit_out:
        print(f"audit trail persisted to {args.audit_out}")

    pending = dataset.sheriff.distributor.pending_jobs
    converged = heal is not None and heal.converged
    print()
    if heal is not None:
        print(f"healing: converged={heal.converged} "
              f"elapsed={heal.elapsed:.0f}s ticks={heal.ticks}")
    if not converged:
        unhealthy = ", ".join(supervisor.unhealthy_components()) or "?"
        print(f"FAIL: deployment did not converge (unhealthy: {unhealthy})")
        return 1
    if pending:
        print(f"FAIL: {pending} job(s) permanently stuck in the distributor")
        return 1
    print("OK: deployment healed, no jobs lost")
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    import json

    from repro.clients.ipc import DEFAULT_IPC_SITES
    from repro.workloads.throughput import ThroughputConfig, run_throughput

    config = (
        ThroughputConfig.smoke_scale()
        if args.scale == "smoke"
        else ThroughputConfig()
    )
    if args.users is not None:
        config.levels = tuple(args.users)
    if args.checks is not None:
        config.total_checks = args.checks
    if args.ipcs is not None:
        config.ipc_sites = DEFAULT_IPC_SITES[: args.ipcs]
    if args.servers is not None:
        config.n_servers = args.servers
    if args.workers is not None:
        config.max_fetch_workers = args.workers
    if args.cache_ttl is not None:
        config.page_cache_ttl = args.cache_ttl
    if args.seed is not None:
        config.seed = args.seed

    from repro.workloads.throughput import (
        measure_telemetry_overhead,
        traced_run,
    )

    report = run_throughput(config)
    if args.max_telemetry_overhead is not None:
        report["telemetry_overhead"] = measure_telemetry_overhead(config)
    if args.mesh:
        from repro.workloads.throughput import run_mesh_throughput

        report["mesh"] = run_mesh_throughput(
            config, n_workers=args.mesh_workers
        )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"{'users':>6} {'serial c/s':>12} {'pipelined c/s':>14} {'speedup':>8}")
    for level in report["levels"]:
        print(
            f"{level['users']:>6} "
            f"{level['serial']['checks_per_sec']:>12.4f} "
            f"{level['pipelined']['checks_per_sec']:>14.4f} "
            f"{level['speedup']:>7.2f}x"
        )
    top_pcts = report["levels"][-1]["pipelined"].get("latency_percentiles")
    if top_pcts:
        rendered = "  ".join(
            f"{k}={v:.3f}s" for k, v in top_pcts.items() if v is not None
        )
        print(f"check latency at top level: {rendered}")
    if args.mesh:
        mesh = report["mesh"]
        print(
            f"mesh: {mesh['workers']} workers, "
            f"{mesh['checks_completed']}/{mesh['checks_requested']} checks, "
            f"{mesh['checks_per_sec_wall']:.2f} checks/s wall"
        )
    print(f"report written to {args.out}")

    if args.trace_out or args.metrics_out:
        telemetry = traced_run(config)
        if args.trace_out:
            with open(args.trace_out, "w") as fh:
                n = telemetry.tracer.export_jsonl(fh)
            print(f"{n} spans exported to {args.trace_out}")
        if args.metrics_out:
            with open(args.metrics_out, "w") as fh:
                fh.write(telemetry.registry.render_exposition())
            print(f"metrics exposition written to {args.metrics_out}")

    if args.require_speedup is not None:
        top = report["speedup_at_top_level"]
        if top <= args.require_speedup:
            print(
                f"FAIL: top-level speedup {top:.2f}x is not above "
                f"{args.require_speedup:.2f}x"
            )
            return 1
        print(f"OK: top-level speedup {top:.2f}x > {args.require_speedup:.2f}x")
    if args.max_telemetry_overhead is not None:
        overhead = report["telemetry_overhead"]["overhead_fraction"]
        if overhead > args.max_telemetry_overhead:
            print(
                f"FAIL: telemetry overhead {overhead:.1%} exceeds "
                f"{args.max_telemetry_overhead:.1%}"
            )
            return 1
        print(
            f"OK: telemetry overhead {overhead:.1%} <= "
            f"{args.max_telemetry_overhead:.1%}"
        )
    if args.require_mesh_rate is not None:
        if not args.mesh:
            print("FAIL: --require-mesh-rate needs --mesh")
            return 1
        mesh = report["mesh"]
        incomplete = mesh["checks_completed"] < mesh["checks_requested"]
        if incomplete or mesh["checks_per_sec_wall"] < args.require_mesh_rate:
            print(
                f"FAIL: mesh run "
                f"{mesh['checks_completed']}/{mesh['checks_requested']} "
                f"checks at {mesh['checks_per_sec_wall']:.2f} checks/s "
                f"(need all checks at >= {args.require_mesh_rate:.2f})"
            )
            return 1
        print(
            f"OK: mesh sustained {mesh['checks_per_sec_wall']:.2f} "
            f"checks/s wall >= {args.require_mesh_rate:.2f}"
        )
    return 0


def _cmd_mesh(args: argparse.Namespace) -> int:
    import json

    from repro.mesh import MeshLauncher, WorkerSpec

    print(f"mesh: launching {args.servers} worker process(es)")
    launcher = MeshLauncher(
        n_workers=args.servers,
        spec=WorkerSpec(
            seed=args.seed, n_stores=args.stores,
            n_ipcs=args.ipcs, n_users=args.users,
        ),
    )
    try:
        hellos = launcher.start()
        for hello in hellos:
            print(f"  ready: {hello['name']} pid={hello['pid']} "
                  f"protocol={hello['protocol']}")
        launcher.heartbeat()
        report = launcher.run_checks(
            total=args.checks, concurrency=args.concurrency
        )
    finally:
        exit_codes = launcher.shutdown()
    entry = report.to_dict()
    entry["exit_codes"] = exit_codes
    print(f"checks: {entry['checks_completed']}/{entry['checks_requested']} "
          f"({entry['rows']} rows) in {entry['wall_s']:.2f}s wall "
          f"-> {entry['checks_per_sec_wall']:.2f} checks/s")
    for stats in entry["per_worker"]:
        print(f"  {stats.get('worker', '?')}: "
              f"checks={stats.get('checks', '?')} "
              f"rows={stats.get('rows', '?')}")
    print(f"exit codes: {exit_codes}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(entry, fh, indent=2)
            fh.write("\n")
        print(f"mesh report written to {args.out}")
    failed = (
        entry["checks_completed"] < entry["checks_requested"]
        or any(code != 0 for code in exit_codes.values())
    )
    if failed:
        print("FAIL: lost checks or a worker exited non-zero")
        return 1
    print("OK: fleet served every check and drained cleanly")
    return 0


def _cmd_scalebench(args: argparse.Namespace) -> int:
    import json

    from repro.clients.ipc import DEFAULT_IPC_SITES
    from repro.workloads.scalebench import ScaleBenchConfig, run_scalebench

    if args.config is not None:
        config = _load_config_json(args.config, ScaleBenchConfig.from_dict)
        if config is None:
            return 1
    else:
        config = (
            ScaleBenchConfig.smoke_scale()
            if args.scale == "smoke"
            else ScaleBenchConfig()
        )
    if args.servers is not None:
        config.server_counts = tuple(args.servers)
    if args.checks is not None:
        config.total_checks = args.checks
    if args.users is not None:
        config.n_users = args.users
    if args.users_levels is not None:
        config.users_levels = tuple(args.users_levels)
    if args.ipcs is not None:
        config.ipc_sites = DEFAULT_IPC_SITES[: args.ipcs]
    if args.seed is not None:
        config.seed = args.seed

    report = run_scalebench(config)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"{'servers':>8} {'checks/s':>10} {'rows':>6} "
          f"{'stolen':>7} {'shed':>5} {'dlq':>4}")
    for level in report["levels"]:
        queue = level["queue"]
        print(
            f"{level['servers']:>8} "
            f"{level['checks_per_sec']:>10.4f} "
            f"{level['rows']:>6} "
            f"{sum(queue.get('steals', {}).values()):>7} "
            f"{queue.get('shed', 0):>5} "
            f"{queue.get('dead_letters', 0):>4}"
        )
    scaling = report["scaling"]
    print(
        f"scaling: {scaling['speedup']:.2f}x at "
        f"{scaling['top_servers']} servers vs "
        f"{scaling['baseline_servers']}"
    )
    print("projection (1 day at measured capacity):")
    for level in report["projection"]["levels"]:
        print(
            f"  {level['users']:>9,} users: "
            f"{level['arrivals_per_day']:>6} checks/day, "
            f"shed {level['shed']}, "
            f"p95 wait {level['p95_wait_s']:.3f}s, "
            f"utilization {level['utilization']:.2%}"
        )
    print(f"report written to {args.out}")

    if args.require_scaling is not None:
        speedup = scaling["speedup"]
        if speedup < args.require_scaling:
            print(
                f"FAIL: scaling {speedup:.2f}x at {scaling['top_servers']} "
                f"servers is below {args.require_scaling:.2f}x"
            )
            return 1
        print(
            f"OK: scaling {speedup:.2f}x >= {args.require_scaling:.2f}x"
        )
    return 0


def _cmd_storagebench(args: argparse.Namespace) -> int:
    import json

    from repro.workloads.storagebench import (
        StorageBenchConfig,
        run_storagebench,
    )

    config = (
        StorageBenchConfig.smoke_scale()
        if args.scale == "smoke"
        else StorageBenchConfig()
    )
    if args.jobs is not None:
        config.n_jobs = args.jobs
    if args.responses_per_job is not None:
        config.responses_per_job = args.responses_per_job
    if args.queries is not None:
        config.n_queries = args.queries
    if args.backends is not None:
        config.backends = tuple(args.backends)
    if args.shards is not None:
        config.shard_counts = tuple(args.shards)
    if args.seed is not None:
        config.seed = args.seed

    report = run_storagebench(config)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"{'backend':>8} {'rows':>7} {'scan us/q':>10} "
          f"{'indexed us/q':>13} {'speedup':>8}")
    for entry in report["scan_vs_index"]:
        print(
            f"{entry['backend']:>8} {entry['rows']:>7} "
            f"{entry['scan_us_per_query']:>10.1f} "
            f"{entry['indexed_us_per_query']:>13.1f} "
            f"{entry['speedup']:>7.1f}x"
        )
    print()
    print(f"{'shards':>6} {'query us/lookup':>16} {'vs single':>10} "
          f"{'occupancy spread':>17}")
    for entry in report["sharding"]:
        print(
            f"{entry['shards']:>6} "
            f"{entry['query_us_per_lookup']:>16.1f} "
            f"{entry['query_speedup_vs_single']:>9.2f}x "
            f"{entry['occupancy_spread']:>16.2f}x"
        )
    print(f"report written to {args.out}")

    if args.require_index_speedup is not None:
        worst = report["min_index_speedup"]
        if worst <= args.require_index_speedup:
            print(
                f"FAIL: index speedup {worst:.1f}x is not above "
                f"{args.require_index_speedup:.1f}x"
            )
            return 1
        print(
            f"OK: every engine's index speedup > "
            f"{args.require_index_speedup:.1f}x (worst {worst:.1f}x)"
        )
    return 0


def _cmd_cryptobench(args: argparse.Namespace) -> int:
    import json

    from repro.workloads.cryptobench import (
        PHASES,
        CryptoBenchConfig,
        run_cryptobench,
    )

    config = (
        CryptoBenchConfig.smoke_scale()
        if args.scale == "smoke"
        else CryptoBenchConfig()
    )
    if args.clients is not None:
        config.n_clients = args.clients
    if args.dims is not None:
        config.m = args.dims
    if args.clusters is not None:
        config.k = args.clusters
    if args.groups is not None:
        config.groups = tuple(args.groups)
    if args.workers is not None:
        config.worker_counts = tuple(args.workers)
    if args.repeats is not None:
        config.repeats = args.repeats
    if args.seed is not None:
        config.seed = args.seed

    report = run_cryptobench(config)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"{'group':>8} {'workers':>7} {'phase':>9} "
          f"{'naive s':>9} {'fast s':>9} {'speedup':>8}")
    for group_report in report["groups"]:
        for row in group_report["workers"]:
            for phase in (*PHASES, "total"):
                print(
                    f"{group_report['group']:>8} {row['n_workers']:>7} "
                    f"{phase:>9} "
                    f"{row['naive'][f'{phase}_s']:>9.3f} "
                    f"{row['fast'][f'{phase}_s']:>9.3f} "
                    f"{row['speedup'][phase]:>7.2f}x"
                )
    lockstep = "ok" if report["lockstep_ok"] else "BROKEN"
    print(f"naive/fast lockstep: {lockstep}")
    print(f"report written to {args.out}")

    if args.require_speedup is not None:
        gate = report["gate_speedup"]
        if not report["lockstep_ok"]:
            print("FAIL: naive and fast paths diverged (lockstep broken)")
            return 1
        if gate is None:
            print("FAIL: no test-group single-worker row to gate on")
            return 1
        if gate <= args.require_speedup:
            print(
                f"FAIL: encrypt+distance speedup {gate:.2f}x is not above "
                f"{args.require_speedup:.2f}x"
            )
            return 1
        print(
            f"OK: encrypt+distance speedup {gate:.2f}x > "
            f"{args.require_speedup:.2f}x (lockstep ok)"
        )
    return 0


def _cmd_parsebench(args: argparse.Namespace) -> int:
    import json

    from repro.workloads.parsebench import ParseBenchConfig, run_parsebench

    config = (
        ParseBenchConfig.smoke_scale()
        if args.scale == "smoke"
        else ParseBenchConfig()
    )
    if args.layouts is not None:
        config.n_layouts = args.layouts
    if args.vantages is not None:
        config.n_vantages = args.vantages
    if args.duplicate_fraction is not None:
        config.duplicate_fraction = args.duplicate_fraction
    if args.repeats is not None:
        config.repeats = args.repeats
    if args.seed is not None:
        config.seed = args.seed

    report = run_parsebench(config)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    ext = report["extraction"]
    print(f"extraction: {ext['page_path_pairs']} page/path pairs over "
          f"{ext['recorded_paths']} recorded paths")
    print(f"{'mode':>8} {'seconds':>10}")
    print(f"{'legacy':>8} {ext['legacy_s']:>10.4f}")
    print(f"{'fast':>8} {ext['fast_s']:>10.4f}")
    stats = ext["stats"]
    print(f"speedup: {ext['speedup']:.2f}x  "
          f"(pages parsed {stats['pages_parsed']}, "
          f"memo hits {stats['memo_hits']}, "
          f"candidates pruned {stats['candidates_pruned']}, "
          f"LCS cells {stats['lcs_cells']})")
    cur = report["currency"]
    print(f"currency: {cur['cold_per_sec']}/s cold, "
          f"{cur['warm_per_sec']}/s memoized")
    det = report["detector"]
    print(f"detector: streaming {det['speedup']:.2f}x vs batch "
          f"recompute over {det['n_rows']} rows "
          f"(reports identical: {det['reports_identical']})")
    lockstep = "ok" if report["lockstep_ok"] else "BROKEN"
    print(f"fast/legacy lockstep: {lockstep}")
    print(f"report written to {args.out}")

    if args.require_speedup is not None:
        if not report["lockstep_ok"]:
            print("FAIL: fast and legacy extraction diverged "
                  "(lockstep broken)")
            return 1
        gate = report["gate_speedup"]
        if gate <= args.require_speedup:
            print(f"FAIL: extraction speedup {gate:.2f}x is not above "
                  f"{args.require_speedup:.2f}x")
            return 1
        print(f"OK: extraction speedup {gate:.2f}x > "
              f"{args.require_speedup:.2f}x (lockstep ok)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.workloads.benchsuite import BenchSuiteConfig, run_benchsuite

    config = BenchSuiteConfig(
        scale=args.scale,
        include=(
            tuple(args.include) if args.include is not None
            else BenchSuiteConfig.include
        ),
        seed=args.seed,
        throughput_speedup=args.require_throughput_speedup,
        max_telemetry_overhead=args.max_telemetry_overhead,
        index_speedup=args.require_index_speedup,
        crypto_speedup=args.require_crypto_speedup,
        scaling_speedup=args.require_scaling,
        parse_speedup=args.require_parse_speedup,
    )
    print(f"benchmark suite: scale={config.scale} "
          f"include={','.join(config.include)}")
    report = run_benchsuite(config)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"{'gate':>22} {'value':>10} {'bound':>8} {'verdict':>8}")
    for gate in report["gates"]:
        value = "n/a" if gate["value"] is None else f"{gate['value']:.2f}"
        sign = {"gt": ">", "ge": ">=", "le": "<="}[gate["comparison"]]
        verdict = "ok" if gate["passed"] else "FAIL"
        print(f"{gate['gate']:>22} {value:>10} "
              f"{sign}{gate['bound']:>7.2f} {verdict:>8}")
    print(f"merged report written to {args.out}")
    if not report["all_passed"]:
        failed = [g["gate"] for g in report["gates"] if not g["passed"]]
        print(f"FAIL: regression gate(s) tripped: {', '.join(failed)}")
        return 1
    print("OK: every regression gate passed")
    return 0


def _journey_record(run, job_id: str):
    """The JSON-ready journey export for one job."""
    journey = run.sheriff.jobs.journey(job_id)
    return {
        "job_id": job_id,
        "stolen": job_id in run.stolen_job_ids,
        "spans": [span.to_dict() for span in journey["spans"]],
        "events": [event.to_dict() for event in journey["events"]],
        "dead_letter": journey["dead_letter"],
        "ticket": journey["ticket"],
    }


def _cmd_journey(args: argparse.Namespace) -> int:
    import json

    from repro.obs import render_trace
    from repro.workloads.journey import JourneyConfig, run_journey

    run = run_journey(JourneyConfig(
        seed=args.seed, latency_fault=args.latency_fault,
    ))
    if args.list:
        for job_id in run.job_ids:
            marker = "  [stolen]" if job_id in run.stolen_job_ids else ""
            print(f"{job_id}{marker}")
        return 0
    job_id = args.job
    if job_id is None:
        if not run.stolen_job_ids:
            print("no job was stolen in this drill — pass a job id")
            return 1
        job_id = run.stolen_job_ids[0]
    if job_id not in run.job_ids:
        print(f"unknown job {job_id!r} (repro journey --list shows the "
              f"drill's jobs)")
        return 1

    journey = run.sheriff.jobs.journey(job_id)
    stolen = " [stolen]" if job_id in run.stolen_job_ids else ""
    print(f"journey of {job_id}{stolen} "
          f"(steals this run: {sum(run.steals.values())})")
    print()
    print(render_trace(journey["spans"], show_critical_path=True))
    print()
    print("flight recorder:")
    for event in journey["events"]:
        detail = " ".join(
            f"{k}={v}" for k, v in sorted(event.detail.items())
        )
        print(f"  t={event.time:10.3f}  {event.kind:<12} {detail}")
    ticket = journey["ticket"]
    if ticket is not None:
        state = (
            "completed" if ticket["completed"]
            else f"failed ({ticket['failure_reason']})" if ticket["failed"]
            else "in flight"
        )
        print(f"ticket: server={ticket['server_name']} "
              f"attempts={ticket['attempts']} {state}")
    if journey["dead_letter"] is not None:
        dead = journey["dead_letter"]
        print(f"dead letter: reason={dead['reason']} "
              f"last_event={dead['last_event']}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(_journey_record(run, job_id), fh, indent=2)
            fh.write("\n")
        print(f"journey record written to {args.out}")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    from repro.workloads.journey import JourneyConfig, run_slo_drill

    run, report, alerts = run_slo_drill(
        JourneyConfig(seed=args.seed, latency_fault=args.latency_fault),
        max_burn_rate=args.max_burn_rate,
    )
    print(f"SLO drill: seed={args.seed} "
          f"latency_fault={args.latency_fault} "
          f"max_burn_rate={args.max_burn_rate:g}x")
    print()
    print(f"{'objective':>16} {'kind':>13} {'target':>7} {'compliance':>11} "
          f"{'budget burn':>12} {'verdict':>8}")
    for status in report["slos"]:
        verdict = "ok" if status["met"] else "VIOLATED"
        print(
            f"{status['name']:>16} {status['kind']:>13} "
            f"{status['objective']:>6.0%} {status['compliance']:>10.1%} "
            f"{status['budget_consumed']:>11.2f}x {verdict:>8}"
        )
    print()
    if alerts:
        print("burn-rate pages:")
        for event in alerts:
            print(f"  t={event.time:10.1f}  {event.component}  "
                  f"({event.detail})")
    else:
        print("burn-rate pages: none")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(
                {
                    **report,
                    "alerts": [
                        {
                            "time": event.time,
                            "component": event.component,
                            "detail": event.detail,
                            "values": event.values,
                        }
                        for event in alerts
                    ],
                },
                fh, indent=2,
            )
            fh.write("\n")
        print(f"SLO report written to {args.out}")
    if args.require_met and (not report["all_met"] or alerts):
        print("FAIL: an objective is unmet or a burn-rate alert fired")
        return 1
    return 0


def _telemetry_drill(args: argparse.Namespace):
    """A small telemetry-on deployment for metrics/trace/panel."""
    from repro.workloads.deployment import DeploymentConfig, LiveDeployment

    config = DeploymentConfig.test_scale()
    config.n_requests = args.requests
    config.n_users = args.users
    config.chaos_profile = None if args.chaos in (None, "none") else args.chaos
    config.chaos_seed = args.seed
    config.telemetry = True
    # a short cache TTL so the cache hit/miss series carry data
    config.page_cache_ttl = 60.0
    return LiveDeployment(config).run()


def _cmd_metrics(args: argparse.Namespace) -> int:
    dataset = _telemetry_drill(args)
    exposition = dataset.sheriff.telemetry.registry.render_exposition()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(exposition)
        print(f"metrics exposition written to {args.out}")
    else:
        print(exposition, end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import render_trace

    dataset = _telemetry_drill(args)
    tracer = dataset.sheriff.telemetry.tracer
    trace_ids = tracer.trace_ids()
    if not trace_ids:
        print("no price check completed — nothing to trace")
        return 1
    try:
        trace_id = trace_ids[args.job]
    except IndexError:
        print(f"no traced job {args.job} (have {len(trace_ids)})")
        return 1
    print(render_trace(tracer.spans_for(trace_id)))
    if args.out:
        with open(args.out, "w") as fh:
            n = tracer.export_jsonl(fh)
        print(f"\n{n} spans exported to {args.out}")
    return 0


def _cmd_panel(args: argparse.Namespace) -> int:
    from repro.core.monitoring import (
        faults_panel,
        peers_panel,
        pipeline_panel,
        servers_panel,
    )

    dataset = _telemetry_drill(args)
    sheriff = dataset.sheriff
    registry = sheriff.telemetry.registry
    print(pipeline_panel(registry))
    print()
    print(servers_panel(registry))
    print()
    print(peers_panel(registry))
    print()
    report = sheriff.fault_report()
    report.pop("chaos_profile", None)
    report.pop("faults_injected", None)
    print(faults_panel(sheriff.faults, recovery=report))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "reproduce": _cmd_reproduce,
        "perf": _cmd_perf,
        "geoblock": _cmd_geoblock,
        "panels": _cmd_panels,
        "watch": _cmd_watch,
        "chaos": _cmd_chaos,
        "supervise": _cmd_supervise,
        "throughput": _cmd_throughput,
        "mesh": _cmd_mesh,
        "scalebench": _cmd_scalebench,
        "storagebench": _cmd_storagebench,
        "cryptobench": _cmd_cryptobench,
        "parsebench": _cmd_parsebench,
        "bench": _cmd_bench,
        "metrics": _cmd_metrics,
        "trace": _cmd_trace,
        "journey": _cmd_journey,
        "slo": _cmd_slo,
        "panel": _cmd_panel,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
