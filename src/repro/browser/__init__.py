"""Browser substrate: cookie jar, history, cache, sandboxing, user agents.

Stands in for Firefox/Chrome plus the WebExtension APIs the add-on uses
(cookie service, history service, cache service, HTTP(S) connection
monitoring).  The :class:`~repro.browser.sandbox.Sandbox` reproduces the
client-side pollution prevention of Sect. 3.6.1: a remote page request
executes against a snapshot of the browser state and every trace of it —
cookies set by the page or its trackers, history entries, cache entries —
is discarded afterwards.
"""

from repro.browser.cookies import CookieJar
from repro.browser.history import BrowserHistory, HistoryEntry
from repro.browser.fingerprint import UserAgent, all_user_agents, user_agent
from repro.browser.browser import Browser
from repro.browser.sandbox import Sandbox, SandboxedFetchResult

__all__ = [
    "CookieJar",
    "BrowserHistory",
    "HistoryEntry",
    "UserAgent",
    "all_user_agents",
    "user_agent",
    "Browser",
    "Sandbox",
    "SandboxedFetchResult",
]
