"""Sandboxing of remote page requests (Sect. 3.6.1).

When a PPC serves a price-check request for another peer, the add-on
must leave the local browser exactly as it found it: no cookies (however
installed), no history entries, no cache entries.  The
:class:`Sandbox` context manager snapshots cookie jar, history, and
cache on entry and restores them on exit — including on exceptions.

:func:`sandboxed_fetch` performs one remote product-page request inside
such a sandbox, optionally swapping in a doppelganger's client-side
state first (Sect. 3.6.2).  Server-side effects are *not* undone — they
cannot be, which is exactly why the pollution budget and doppelgangers
exist — but when the doppelganger state is used, those effects attach to
the doppelganger's cookies instead of the real user's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.browser.browser import Browser
from repro.web.store import StoreResponse

ClientState = Dict[str, Dict[str, str]]


class Sandbox:
    """Snapshot/restore guard over a browser's local state."""

    def __init__(self, browser: Browser) -> None:
        self._browser = browser
        self._cookies_snapshot: Optional[ClientState] = None
        self._history_snapshot = None
        self._cache_snapshot: Optional[Dict[str, str]] = None

    def __enter__(self) -> "Sandbox":
        self._cookies_snapshot = self._browser.cookies.snapshot()
        self._history_snapshot = self._browser.history.snapshot()
        self._cache_snapshot = dict(self._browser.cache)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._cookies_snapshot is not None
        self._browser.cookies.restore(self._cookies_snapshot)
        self._browser.history.restore(self._history_snapshot)
        self._browser.cache.clear()
        self._browser.cache.update(self._cache_snapshot or {})


@dataclass
class SandboxedFetchResult:
    """Outcome of one sandboxed remote page request."""

    response: StoreResponse
    #: full client-side state at the end of the request — when a
    #: doppelganger was swapped in, this is its updated state to hand
    #: back to the Coordinator.
    client_state_after: ClientState
    used_doppelganger: bool


def sandboxed_fetch(
    browser: Browser,
    url: str,
    client_state: Optional[ClientState] = None,
) -> SandboxedFetchResult:
    """Fetch ``url`` in a sandbox, optionally as a doppelganger.

    With ``client_state=None`` the request is sent with the PPC's *own*
    cookies (real-profile measurement point, counted against the
    pollution budget).  Otherwise the jar is replaced by the given
    doppelganger state for the duration of the request.  Either way the
    browser's cookies/history/cache are bit-identical afterwards.
    """
    with Sandbox(browser):
        if client_state is not None:
            browser.cookies.restore(client_state)
        response = browser.visit(url)
        state_after = browser.cookies.snapshot()
    return SandboxedFetchResult(
        response=response,
        client_state_after=state_after,
        used_doppelganger=client_state is not None,
    )
