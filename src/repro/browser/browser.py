"""The browser model: fetch pipeline, cookies, history, cache, trackers.

A :class:`Browser` is the execution environment both of real users (who
browse organically and thereby build profiles) and of the $heriff add-on
(which issues sandboxed remote page requests through it).  A normal
:meth:`visit` does everything a real navigation does:

1. sends the first-party cookies for the target domain plus the visitor's
   tracker cookies,
2. applies ``Set-Cookie`` responses to the jar,
3. records the URL in history and the HTML in the cache,
4. "executes" the page's third-party trackers: each tracker observes the
   visit under the browser's per-tracker cookie (creating one on first
   contact), which is how server-side tracking profiles accrete.
"""

from __future__ import annotations

import itertools
import secrets
from typing import Dict, Optional

from repro.browser.cookies import CookieJar
from repro.browser.fingerprint import UserAgent, user_agent
from repro.browser.history import BrowserHistory
from repro.net.events import Clock
from repro.net.geo import Location
from repro.web.internet import Internet, parse_url
from repro.web.pricing import RequestContext
from repro.web.store import StoreResponse
from repro.web.trackers import TrackerEcosystem

_browser_counter = itertools.count()


class Browser:
    """One browser instance (a user's, an IPC's, or a doppelganger's)."""

    def __init__(
        self,
        internet: Internet,
        ecosystem: TrackerEcosystem,
        clock: Clock,
        location: Location,
        agent: Optional[UserAgent] = None,
        browser_id: Optional[str] = None,
    ) -> None:
        self.internet = internet
        self.ecosystem = ecosystem
        self.clock = clock
        self.location = location
        self.agent = agent if agent is not None else user_agent("Windows 7", "Chrome")
        self.browser_id = browser_id or f"browser-{next(_browser_counter)}"
        self.cookies = CookieJar()
        self.history = BrowserHistory()
        self.cache: Dict[str, str] = {}
        self._nonce = itertools.count()

    # -- context construction ---------------------------------------------
    def _tracker_cookies(self) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for domain in self.ecosystem.domains():
            value = self.cookies.value(domain, "tid")
            if value is not None:
                out[domain] = value
        return out

    def request_context(self, domain: str) -> RequestContext:
        return RequestContext(
            time=self.clock.now,
            location=self.location,
            user_agent=self.agent.string,
            first_party_cookies=self.cookies.get(domain),
            tracker_cookies=self._tracker_cookies(),
            request_nonce=next(self._nonce),
        )

    # -- fetching ---------------------------------------------------------
    def _run_trackers(self, response: StoreResponse, first_party: str) -> None:
        for tracker_domain in response.tracker_domains:
            tracker = self.ecosystem.get(tracker_domain)
            cookie = self.cookies.value(tracker_domain, "tid")
            new_cookie = tracker.observe(cookie, first_party, time=self.clock.now)
            self.cookies.set(tracker_domain, "tid", new_cookie)

    def visit(self, url: str) -> StoreResponse:
        """A full, state-mutating navigation (what a real user does)."""
        domain, _ = parse_url(url)
        ctx = self.request_context(domain)
        response = self.internet.fetch(url, ctx)
        self.cookies.set_many(domain, response.set_cookies)
        self._run_trackers(response, domain)
        self.history.add(self.clock.now, url)
        self.cache[url] = response.html
        return response

    def fetch_raw(self, url: str, ctx: RequestContext) -> StoreResponse:
        """Fetch without touching any browser state (sandbox internals)."""
        return self.internet.fetch(url, ctx)

    # -- account handling --------------------------------------------------
    def login(self, domain: str) -> str:
        """Log into a retailer account (sets the ``account`` cookie)."""
        token = secrets.token_hex(8)
        self.cookies.set(domain, "account", token)
        return token

    def is_logged_in(self, domain: str) -> bool:
        return self.cookies.value(domain, "account") is not None

    # -- profile data -------------------------------------------------------
    def browsing_profile_counts(self):
        """Domain-level visit counts (what the add-on may donate)."""
        return self.history.domain_counts()
