"""User agents: the OS × browser matrix of the Sect. 7.5 experiments.

The paper controls for desktop OS and browser by running "all possible
combinations of popular operating systems and browsers using the
phantomJS headless browser": Windows 7, Mac OSX and Linux crossed with
Chrome, Firefox and Safari.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

OSES = ("Windows 7", "Mac OSX", "Linux")
BROWSERS = ("Chrome", "Firefox", "Safari")


@dataclass(frozen=True)
class UserAgent:
    """One OS/browser combination with its UA string."""

    os: str
    browser: str

    @property
    def string(self) -> str:
        os_token = {
            "Windows 7": "Windows NT 6.1; Win64; x64",
            "Mac OSX": "Macintosh; Intel Mac OS X 10_11",
            "Linux": "X11; Linux x86_64",
        }[self.os]
        browser_token = {
            "Chrome": "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/50.0 Safari/537.36",
            "Firefox": "Gecko/20100101 Firefox/45.0",
            "Safari": "AppleWebKit/601.5 (KHTML, like Gecko) Version/9.1 Safari/601.5",
        }[self.browser]
        return f"Mozilla/5.0 ({os_token}) {browser_token}"


def all_user_agents() -> List[UserAgent]:
    """Every OS × browser combination, in deterministic order."""
    return [UserAgent(os=o, browser=b) for o in OSES for b in BROWSERS]


def user_agent(os: str, browser: str) -> UserAgent:
    if os not in OSES:
        raise ValueError(f"unknown OS {os!r}")
    if browser not in BROWSERS:
        raise ValueError(f"unknown browser {browser!r}")
    return UserAgent(os=os, browser=browser)


def parse_user_agent(ua_string: str) -> Tuple[str, str]:
    """Best-effort inverse of :attr:`UserAgent.string` (for store logs)."""
    os = "Linux"
    if "Windows" in ua_string:
        os = "Windows 7"
    elif "Macintosh" in ua_string:
        os = "Mac OSX"
    browser = "Safari"
    if "Chrome" in ua_string:
        browser = "Chrome"
    elif "Firefox" in ua_string:
        browser = "Firefox"
    return os, browser
