"""Cookie storage modelled on the browser cookie service.

Cookies are stored per domain.  ``snapshot()`` / ``restore()`` support
the sandbox: the add-on monitors the cookie service during remote page
requests and removes everything that was installed, "irrespective of the
techniques used to install them" (Sect. 3.6.1).
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional


class CookieJar:
    """Per-domain name→value cookie store with snapshot support."""

    def __init__(self, initial: Optional[Dict[str, Dict[str, str]]] = None) -> None:
        self._jar: Dict[str, Dict[str, str]] = {}
        if initial:
            for domain, cookies in initial.items():
                self._jar[domain] = dict(cookies)

    # -- access ------------------------------------------------------------
    def get(self, domain: str) -> Dict[str, str]:
        """Cookies for one domain (a copy; mutate via :meth:`set`)."""
        return dict(self._jar.get(domain, {}))

    def value(self, domain: str, name: str) -> Optional[str]:
        return self._jar.get(domain, {}).get(name)

    def set(self, domain: str, name: str, value: str) -> None:
        self._jar.setdefault(domain, {})[name] = value

    def set_many(self, domain: str, cookies: Dict[str, str]) -> None:
        for name, value in cookies.items():
            self.set(domain, name, value)

    def delete(self, domain: str, name: Optional[str] = None) -> None:
        if name is None:
            self._jar.pop(domain, None)
            return
        cookies = self._jar.get(domain)
        if cookies is not None:
            cookies.pop(name, None)
            if not cookies:
                self._jar.pop(domain, None)

    def domains(self) -> List[str]:
        return list(self._jar)

    def __contains__(self, domain: str) -> bool:
        return domain in self._jar and bool(self._jar[domain])

    def __len__(self) -> int:
        return sum(len(cookies) for cookies in self._jar.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CookieJar):
            return NotImplemented
        return self._jar == other._jar

    # -- snapshot / restore ---------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, str]]:
        return copy.deepcopy(self._jar)

    def restore(self, state: Dict[str, Dict[str, str]]) -> None:
        self._jar = copy.deepcopy(state)

    def clear(self) -> None:
        self._jar.clear()

    def copy(self) -> "CookieJar":
        return CookieJar(self.snapshot())
