"""Browsing history modelled on the browser history service.

The $heriff's PDI-PD detection needs *domain-level* browsing profiles:
"accessing the entire browsing history of the user at the granularity of
a full URL is not recommended since the full URLs are prone to leak
personally identifiable information" (Sect. 2.2, requirement 3).  The
history stores full URLs (as the real service does) but exposes the
domain-level view the add-on donates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from repro.web.internet import parse_url


@dataclass(frozen=True)
class HistoryEntry:
    time: float
    url: str

    @property
    def domain(self) -> str:
        return parse_url(self.url)[0]


class BrowserHistory:
    """Ordered visit log with domain-level aggregation and snapshots."""

    def __init__(self) -> None:
        self._entries: List[HistoryEntry] = []

    def add(self, time: float, url: str) -> None:
        self._entries.append(HistoryEntry(time=time, url=url))

    def entries(self) -> List[HistoryEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def domain_counts(self, since: Optional[float] = None) -> Counter:
        """Visits per domain — the donated browsing-profile raw data."""
        counts: Counter = Counter()
        for entry in self._entries:
            if since is not None and entry.time < since:
                continue
            counts[entry.domain] += 1
        return counts

    def visits_to(self, domain: str) -> int:
        return sum(1 for e in self._entries if e.domain == domain)

    def product_visits_to(self, domain: str) -> int:
        """Visits to product pages of one domain (pollution accounting)."""
        return sum(
            1
            for e in self._entries
            if e.domain == domain and "/product/" in e.url
        )

    # -- snapshot / restore ----------------------------------------------
    def snapshot(self) -> List[HistoryEntry]:
        return list(self._entries)

    def restore(self, state: List[HistoryEntry]) -> None:
        self._entries = list(state)

    def clear(self) -> None:
        self._entries.clear()
