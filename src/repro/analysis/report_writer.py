"""Markdown report generation for reproduction runs.

Bundles rendered experiment outputs into a single markdown document —
what a user attaches to an issue or a replication report.  Rendered
tables are fixed-width text, so they go into code fences verbatim.
"""

from __future__ import annotations

import platform
import sys
from pathlib import Path
from typing import Sequence, Tuple, Union


def write_markdown_report(
    sections: Sequence[Tuple[str, str]],
    path: Union[str, Path],
    title: str = "Price $heriff reproduction report",
    scale: str = "default",
) -> Path:
    """Write ``(section name, rendered text)`` pairs to a markdown file."""
    lines = [
        f"# {title}",
        "",
        f"- scale: `{scale}`",
        f"- python: `{sys.version.split()[0]}` on `{platform.platform()}`",
        f"- sections: {len(sections)}",
        "",
    ]
    for name, rendered in sections:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```text")
        lines.append(rendered.rstrip())
        lines.append("```")
        lines.append("")
    out = Path(path)
    out.write_text("\n".join(lines))
    return out
