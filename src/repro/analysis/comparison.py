"""Comparing a study's results with a prior study (Sect. 7.2).

The paper revisits the domains reported by Mikians et al. [24] and
classifies each as: no longer valid, no longer discriminating,
redirecting by location, or still serving different prices — and for
the last group compares the median price variation then vs now
(e.g. luisaviaroma.com ≈1.15 in both).  This module provides the same
bookkeeping for any pair of (prior report, current results).
"""

from __future__ import annotations

import enum
from bisect import insort
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.pricediff import _quantile
from repro.core.pricecheck import PriceCheckResult


class DomainStatus(enum.Enum):
    """What became of a previously reported domain."""

    NO_LONGER_VALID = "no-longer-valid"  # domain gone
    STOPPED_DISCRIMINATING = "stopped"  # checked, no differences anymore
    STILL_DISCRIMINATING = "still-serving-different-prices"
    NOT_CHECKED = "not-checked"  # no current data for it


@dataclass(frozen=True)
class PriorReport:
    """One domain's entry in the earlier study."""

    domain: str
    median_ratio: float  # median max/min price ratio reported


@dataclass
class DomainComparison:
    domain: str
    status: DomainStatus
    prior_ratio: Optional[float] = None
    current_ratio: Optional[float] = None

    @property
    def relative_change(self) -> Optional[float]:
        """(current − prior) / (prior − 1): change of the *variation*.

        The paper reports e.g. overstock.com's variation shrinking 30%
        (1.48 → 1.18) — the change is measured on the excess over 1.
        """
        if (
            self.prior_ratio is None
            or self.current_ratio is None
            or self.prior_ratio <= 1.0
        ):
            return None
        return (self.current_ratio - self.prior_ratio) / (self.prior_ratio - 1.0)


@dataclass
class StudyComparison:
    """Aggregate of the Sect. 7.2 comparison."""

    comparisons: List[DomainComparison]

    def fraction(self, status: DomainStatus) -> float:
        considered = [c for c in self.comparisons
                      if c.status is not DomainStatus.NOT_CHECKED]
        if not considered:
            return 0.0
        return sum(1 for c in considered if c.status is status) / len(considered)

    def still_discriminating(self) -> List[DomainComparison]:
        return [c for c in self.comparisons
                if c.status is DomainStatus.STILL_DISCRIMINATING]


class PriorStudyTracker:
    """Update-on-write bookkeeping for the Sect. 7.2 comparison.

    The batch :func:`compare_with_prior_study` re-derived every
    domain's spread distribution from the full result list on each
    read.  This tracker folds results in as they arrive — one
    ``bisect.insort`` into the domain's sorted spread list when a check
    shows a difference — so :meth:`comparison` only walks the prior
    reports and reads each median at an index.  Classifications and
    ratios are identical to the batch computation over the same
    results.
    """

    __slots__ = ("_prior", "_live", "_tolerance", "_spreads", "_checked")

    def __init__(
        self,
        prior: Sequence[PriorReport],
        live_domains: Iterable[str],
        tolerance: float = 0.005,
    ) -> None:
        self._prior = tuple(prior)
        self._live = set(live_domains)
        self._tolerance = tolerance
        self._spreads: Dict[str, List[float]] = {}
        self._checked: Set[str] = set()

    def add(self, result: PriceCheckResult) -> None:
        """Fold one price check into the running comparison."""
        self._checked.add(result.domain)
        spread = result.normalized_spread()
        if spread is not None and spread > self._tolerance:
            values = self._spreads.get(result.domain)
            if values is None:
                values = self._spreads[result.domain] = []
            insort(values, spread)

    def add_results(self, results: Iterable[PriceCheckResult]) -> None:
        for result in results:
            self.add(result)

    def comparison(self) -> StudyComparison:
        """The Sect. 7.2 verdict over everything streamed so far."""
        comparisons: List[DomainComparison] = []
        for report in self._prior:
            if report.domain not in self._live:
                comparisons.append(DomainComparison(
                    domain=report.domain, status=DomainStatus.NO_LONGER_VALID,
                    prior_ratio=report.median_ratio,
                ))
            elif report.domain in self._spreads:
                comparisons.append(DomainComparison(
                    domain=report.domain,
                    status=DomainStatus.STILL_DISCRIMINATING,
                    prior_ratio=report.median_ratio,
                    current_ratio=1.0
                    + _quantile(self._spreads[report.domain], 0.5),
                ))
            elif report.domain in self._checked:
                comparisons.append(DomainComparison(
                    domain=report.domain,
                    status=DomainStatus.STOPPED_DISCRIMINATING,
                    prior_ratio=report.median_ratio,
                ))
            else:
                comparisons.append(DomainComparison(
                    domain=report.domain, status=DomainStatus.NOT_CHECKED,
                    prior_ratio=report.median_ratio,
                ))
        return StudyComparison(comparisons=comparisons)


def compare_with_prior_study(
    results: Sequence[PriceCheckResult],
    prior: Sequence[PriorReport],
    live_domains: Iterable[str],
    tolerance: float = 0.005,
) -> StudyComparison:
    """Classify every prior-study domain against current observations.

    ``live_domains`` is the set of domains that still exist (resolve);
    prior domains outside it are "no longer valid".  Domains with
    current checks are classified by whether any difference persists,
    and the median max/min ratio is compared when it does.
    """
    tracker = PriorStudyTracker(prior, live_domains, tolerance=tolerance)
    tracker.add_results(results)
    return tracker.comparison()


#: the [24] values the paper quotes in Sect. 7.2 for domains still
#: serving different prices (median variation then).
MIKIANS_2013_REPORTS: Sequence[PriorReport] = (
    PriorReport("luisaviaroma.com", 1.15),
    PriorReport("tuscanyleather.it", 1.12),
    PriorReport("abercrombie.com", 1.53),
    PriorReport("overstock.com", 1.48),
    PriorReport("digitalrev.com", 1.16),
)
