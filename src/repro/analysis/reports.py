"""Rendering helpers for the benchmark harnesses' tables and series."""

from __future__ import annotations

from typing import Any, Optional, Sequence


def format_percent(value: float, decimals: int = 2) -> str:
    return f"{value:.{decimals}f}%"


def format_table(
    rows: Sequence[Sequence[Any]],
    headers: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table from row tuples (numbers get 2-decimal form)."""

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:,.2f}"
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(f"{h:<{w}}" for h, w in zip(headers, widths)))
    lines.append("-" * len(lines[-1]))
    for row in rendered:
        lines.append("  ".join(f"{v:<{w}}" for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[Any], ys: Sequence[Any], x_label: str, y_label: str
) -> str:
    """Two-column rendering of a figure's data series."""
    return format_table(list(zip(xs, ys)), headers=(x_label, y_label))
