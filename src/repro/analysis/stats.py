"""The statistical machinery of Sect. 7.5.

The paper's argument that the within-country variations are A/B testing
rather than PDI-PD combines four analyses:

1. **pairwise Kolmogorov–Smirnov tests** between measurement points'
   price distributions — D values ≥ 0.3 with p-values above 0.55 mean
   every point draws from the same distribution;
2. an approximately **50 % probability** for any point to see the higher
   price;
3. **linear / multi-linear regression** of price on OS, browser,
   time-of-day quarter, and weekday — a weak fit (R² ≈ 0.43) with no
   significant feature;
4. a **random forest** whose feature importances are uniformly low.

scikit-learn is not available offline, so the random forest (CART
regression trees, bootstrap sampling, feature subsampling, impurity
importances) and ROC-AUC are implemented here from scratch; the KS test
and t-distribution come from scipy.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as sps


# -- Kolmogorov–Smirnov ------------------------------------------------------

def ks_pairwise(
    samples: Dict[str, Sequence[float]]
) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """KS test for every pair of measurement points.

    Returns ``{(a, b): (D, p)}`` for a < b.  Points with fewer than two
    observations are skipped.
    """
    keys = sorted(k for k, v in samples.items() if len(v) >= 2)
    out: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for i, a in enumerate(keys):
        for b in keys[i + 1:]:
            result = sps.ks_2samp(samples[a], samples[b])
            out[(a, b)] = (float(result.statistic), float(result.pvalue))
    return out


def probability_higher(samples: Dict[str, Sequence[float]]) -> Dict[str, float]:
    """Per point: fraction of its observations above the global median."""
    pooled = [v for values in samples.values() for v in values]
    if not pooled:
        return {}
    median = float(np.median(pooled))
    return {
        key: float(np.mean([v > median for v in values])) if len(values) else 0.0
        for key, values in samples.items()
    }


# -- regression ------------------------------------------------------------------

@dataclass
class RegressionResult:
    """OLS fit with per-feature significance."""

    feature_names: List[str]
    coefficients: np.ndarray  # includes intercept at index 0
    r_squared: float
    p_values: Dict[str, float]  # per feature (excluding intercept)

    def significant_features(self, alpha: float = 0.05) -> List[str]:
        return [f for f, p in self.p_values.items() if p < alpha]


def linear_regression(
    X: Sequence[Sequence[float]],
    y: Sequence[float],
    feature_names: Optional[Sequence[str]] = None,
) -> RegressionResult:
    """Ordinary least squares with t-test p-values per coefficient."""
    Xm = np.asarray(X, dtype=float)
    if Xm.ndim == 1:
        Xm = Xm[:, None]
    yv = np.asarray(y, dtype=float)
    n, k = Xm.shape
    if feature_names is None:
        feature_names = [f"x{i}" for i in range(k)]
    if len(feature_names) != k:
        raise ValueError("feature_names length mismatch")
    A = np.column_stack([np.ones(n), Xm])
    coef, *_ = np.linalg.lstsq(A, yv, rcond=None)
    fitted = A @ coef
    residuals = yv - fitted
    ss_res = float(residuals @ residuals)
    ss_tot = float(((yv - yv.mean()) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot

    dof = max(1, n - k - 1)
    sigma2 = ss_res / dof
    try:
        cov = sigma2 * np.linalg.inv(A.T @ A)
        se = np.sqrt(np.maximum(np.diag(cov), 1e-30))
        t_stats = coef / se
        p_all = 2.0 * sps.t.sf(np.abs(t_stats), dof)
    except np.linalg.LinAlgError:
        p_all = np.ones(k + 1)
    p_values = {name: float(p_all[i + 1]) for i, name in enumerate(feature_names)}
    return RegressionResult(
        feature_names=list(feature_names),
        coefficients=coef,
        r_squared=float(r_squared),
        p_values=p_values,
    )


# -- random forest (from scratch; sklearn is unavailable offline) -----------

@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _RegressionTree:
    """CART regression tree with variance-reduction splits."""

    def __init__(self, max_depth: int, min_samples: int, max_features: int,
                 rng: random.Random) -> None:
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.max_features = max_features
        self._rng = rng
        self.root: Optional[_TreeNode] = None
        self.importances: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.importances = np.zeros(X.shape[1])
        self.root = self._build(X, y, depth=0)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < self.min_samples or np.all(y == y[0]):
            return node
        n_features = X.shape[1]
        candidates = self._rng.sample(
            range(n_features), min(self.max_features, n_features)
        )
        best = None  # (gain, feature, threshold, mask)
        parent_impurity = float(y.var()) * len(y)
        for feature in candidates:
            values = np.unique(X[:, feature])
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                mask = X[:, feature] <= threshold
                n_left = int(mask.sum())
                if n_left == 0 or n_left == len(y):
                    continue
                impurity = float(y[mask].var()) * n_left + float(
                    y[~mask].var()
                ) * (len(y) - n_left)
                gain = parent_impurity - impurity
                if best is None or gain > best[0]:
                    best = (gain, feature, threshold, mask)
        if best is None or best[0] <= 1e-12:
            return node
        gain, feature, threshold, mask = best
        self.importances[feature] += gain
        node.feature = feature
        node.threshold = float(threshold)
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict_one(self, x: np.ndarray) -> float:
        node = self.root
        assert node is not None
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.value


class RandomForest:
    """Bootstrap ensemble of regression trees with impurity importances."""

    def __init__(
        self,
        n_trees: int = 30,
        max_depth: int = 6,
        min_samples: int = 4,
        max_features: Optional[int] = None,
        seed: int = 2017,
    ) -> None:
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.max_features = max_features
        self.seed = seed
        self._trees: List[_RegressionTree] = []
        self.feature_importances_: Optional[np.ndarray] = None

    def fit(self, X: Sequence[Sequence[float]], y: Sequence[float]) -> "RandomForest":
        Xm = np.asarray(X, dtype=float)
        yv = np.asarray(y, dtype=float)
        n, k = Xm.shape
        max_features = self.max_features or max(1, int(math.sqrt(k)))
        rng = random.Random(self.seed)
        self._trees = []
        importances = np.zeros(k)
        for _ in range(self.n_trees):
            idx = [rng.randrange(n) for _ in range(n)]
            tree = _RegressionTree(
                max_depth=self.max_depth, min_samples=self.min_samples,
                max_features=max_features, rng=rng,
            )
            tree.fit(Xm[idx], yv[idx])
            self._trees.append(tree)
            importances += tree.importances
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        Xm = np.asarray(X, dtype=float)
        if not self._trees:
            raise RuntimeError("forest not fitted")
        preds = np.zeros(Xm.shape[0])
        for tree in self._trees:
            preds += np.array([tree.predict_one(x) for x in Xm])
        return preds / len(self._trees)

    def score(self, X: Sequence[Sequence[float]], y: Sequence[float]) -> float:
        """R² on the given data."""
        yv = np.asarray(y, dtype=float)
        pred = self.predict(X)
        ss_res = float(((yv - pred) ** 2).sum())
        ss_tot = float(((yv - yv.mean()) ** 2).sum())
        return 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot


def roc_auc(labels: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the ROC curve (rank statistic formulation)."""
    pairs = sorted(zip(scores, labels))
    n_pos = sum(1 for _, label in pairs if label)
    n_neg = len(pairs) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc needs both classes present")
    # average rank of positives (ties get average rank)
    rank_sum = 0.0
    i = 0
    rank = 1
    while i < len(pairs):
        j = i
        while j < len(pairs) and pairs[j][0] == pairs[i][0]:
            j += 1
        avg_rank = (rank + rank + (j - i) - 1) / 2.0
        rank_sum += sum(avg_rank for k in range(i, j) if pairs[k][1])
        rank += j - i
        i = j
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


# -- the combined Sect. 7.5 verdict -------------------------------------------

@dataclass
class ABTestVerdict:
    """Outcome of the A/B-vs-PDI-PD decision procedure."""

    min_ks_d: Optional[float]
    min_ks_p: Optional[float]
    n_ks_pairs: int
    higher_price_probabilities: Dict[str, float]
    regression_r2: float
    significant_features: List[str]
    forest_max_importance: Optional[float]
    forest_score: Optional[float]
    is_ab_testing: bool

    def summary(self) -> str:
        verdict = "A/B testing" if self.is_ab_testing else "possible PDI-PD"
        return (
            f"verdict={verdict}  min KS p={self.min_ks_p}  "
            f"R²={self.regression_r2:.3f}  "
            f"significant={self.significant_features or 'none'}"
        )


def ab_test_verdict(
    samples: Dict[str, Sequence[float]],
    features: Optional[Sequence[Sequence[float]]] = None,
    prices: Optional[Sequence[float]] = None,
    feature_names: Optional[Sequence[str]] = None,
    ks_p_threshold: float = 0.05,
    regression_alpha: float = 0.01,
    regression_r2_floor: float = 0.3,
) -> ABTestVerdict:
    """Combine the Sect. 7.5 analyses into one verdict.

    ``samples`` maps measurement point → observed prices (normalized per
    product, e.g. relative differences).  ``features``/``prices`` supply
    the per-observation regression/forest inputs when available.

    The verdict is A/B testing when (a) no KS pair rejects the
    same-distribution hypothesis, (b) no regression feature is
    significant, and (c) no forest feature dominates.
    """
    ks = ks_pairwise(samples)
    min_d = min((d for d, _ in ks.values()), default=None)
    min_p = min((p for _, p in ks.values()), default=None)
    prob_higher = probability_higher(samples)

    r2 = 0.0
    significant: List[str] = []
    forest_max = None
    forest_score = None
    n_features = 0
    if features is not None and prices is not None and len(prices) >= 8:
        regression = linear_regression(features, prices, feature_names)
        r2 = regression.r_squared
        significant = regression.significant_features(alpha=regression_alpha)
        forest = RandomForest(n_trees=20, max_depth=5).fit(features, prices)
        assert forest.feature_importances_ is not None
        n_features = len(forest.feature_importances_)
        forest_max = (
            float(forest.feature_importances_.max()) if n_features else None
        )
        forest_score = forest.score(features, prices)

    # Bonferroni: with dozens of pairwise KS tests the minimum p-value is
    # small under the null; correct the rejection threshold accordingly
    effective_ks_threshold = ks_p_threshold / max(1, len(ks))
    distributions_agree = min_p is None or min_p > effective_ks_threshold
    # a regression feature only counts as discrimination evidence when it
    # is both significant and actually explains the prices
    feature_evidence = bool(significant) and r2 >= regression_r2_floor
    # a "dominant" forest feature is evidence only when the forest truly
    # explains the prices; importances concentrate arbitrarily on noise
    if forest_max is None or n_features == 0 or forest_score is None:
        forest_evidence = False
    else:
        dominance_threshold = min(0.9, max(0.35, 2.5 / n_features))
        forest_evidence = (
            forest_max >= dominance_threshold and forest_score >= 0.3
        )
    is_ab = distributions_agree and not feature_evidence and not forest_evidence
    return ABTestVerdict(
        min_ks_d=min_d,
        min_ks_p=min_p,
        n_ks_pairs=len(ks),
        higher_price_probabilities=prob_higher,
        regression_r2=r2,
        significant_features=significant,
        forest_max_importance=forest_max,
        forest_score=forest_score,
        is_ab_testing=is_ab,
    )
