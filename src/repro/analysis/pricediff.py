"""Price-difference statistics over collections of price checks.

Every function takes plain sequences of
:class:`~repro.core.pricecheck.PriceCheckResult` (what the live
deployment and the crawler both produce), so the same analysis code
serves the live dataset (Sect. 6) and the systematic study (Sect. 7).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.pricecheck import PriceCheckResult

DIFFERENCE_TOLERANCE = 0.005


@dataclass(frozen=True)
class BoxStats:
    """Standard box-plot statistics for one distribution."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float


def _quantile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        raise ValueError("empty sample")
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def box_stats(values: Iterable[float]) -> BoxStats:
    ordered = sorted(values)
    if not ordered:
        raise ValueError("empty sample")
    return BoxStats(
        n=len(ordered),
        minimum=ordered[0],
        q1=_quantile(ordered, 0.25),
        median=_quantile(ordered, 0.5),
        q3=_quantile(ordered, 0.75),
        maximum=ordered[-1],
    )


@dataclass(frozen=True)
class DomainDiffStats:
    """One domain's bar + box of Figs. 9 and 11."""

    domain: str
    n_requests: int
    n_with_difference: int
    spread_stats: Optional[BoxStats]  # over normalized spreads of diff checks


def domain_diff_stats(
    results: Sequence[PriceCheckResult],
    tolerance: float = DIFFERENCE_TOLERANCE,
    min_diff_requests: int = 1,
) -> List[DomainDiffStats]:
    """Per-domain request counts and spread distributions.

    Only domains with at least ``min_diff_requests`` price checks showing
    a difference are returned (Fig. 9 uses 10), sorted by the number of
    such checks, descending.
    """
    requests: Counter = Counter()
    spreads: Dict[str, List[float]] = defaultdict(list)
    for result in results:
        requests[result.domain] += 1
        spread = result.normalized_spread()
        if spread is not None and spread > tolerance:
            spreads[result.domain].append(spread)
    out = []
    for domain, diff_list in spreads.items():
        if len(diff_list) < min_diff_requests:
            continue
        out.append(
            DomainDiffStats(
                domain=domain,
                n_requests=requests[domain],
                n_with_difference=len(diff_list),
                spread_stats=box_stats(diff_list),
            )
        )
    out.sort(key=lambda s: s.n_with_difference, reverse=True)
    return out


def domains_with_difference(
    results: Sequence[PriceCheckResult], tolerance: float = DIFFERENCE_TOLERANCE
) -> List[str]:
    """Domains involved in ≥1 price check with a difference (the '76')."""
    seen = set()
    for result in results:
        if result.has_price_difference(tolerance):
            seen.add(result.domain)
    return sorted(seen)


def ratio_vs_min_price(
    results: Sequence[PriceCheckResult],
) -> List[Tuple[float, float]]:
    """(min price €, max/min ratio) per product — the Fig. 10 scatter.

    Observations for the same product URL are pooled across checks.
    """
    by_url: Dict[str, List[float]] = defaultdict(list)
    for result in results:
        by_url[result.url].extend(result.eur_prices())
    points = []
    for prices in by_url.values():
        if len(prices) < 2:
            continue
        low, high = min(prices), max(prices)
        if low <= 0:
            continue
        points.append((low, high / low))
    points.sort()
    return points


def country_extremes(
    results: Sequence[PriceCheckResult],
    tolerance: float = DIFFERENCE_TOLERANCE,
) -> Tuple[Counter, Counter]:
    """(most-expensive, cheapest) country counters — Table 4.

    For every check that shows a difference, the countries observing the
    maximum and minimum price each get one point.
    """
    expensive: Counter = Counter()
    cheapest: Counter = Counter()
    for result in results:
        if not result.has_price_difference(tolerance):
            continue
        rows = [r for r in result.valid_rows() if r.amount_eur is not None]
        top = max(rows, key=lambda r: r.amount_eur)
        bottom = min(rows, key=lambda r: r.amount_eur)
        expensive[top.country] += 1
        cheapest[bottom.country] += 1
    return expensive, cheapest


@dataclass(frozen=True)
class ExtremeDifference:
    """One row of Table 3."""

    domain: str
    url: str
    relative_times: float  # max / min
    absolute_eur: float  # max − min


def extreme_differences(
    results: Sequence[PriceCheckResult], top: int = 10
) -> List[ExtremeDifference]:
    """The largest per-product relative differences (Table 3)."""
    best: Dict[str, ExtremeDifference] = {}
    for result in results:
        prices = result.eur_prices()
        if len(prices) < 2 or min(prices) <= 0:
            continue
        low, high = min(prices), max(prices)
        candidate = ExtremeDifference(
            domain=result.domain,
            url=result.url,
            relative_times=high / low,
            absolute_eur=high - low,
        )
        prev = best.get(result.url)
        if prev is None or candidate.relative_times > prev.relative_times:
            best[result.url] = candidate
    ranked = sorted(best.values(), key=lambda e: e.relative_times, reverse=True)
    return ranked[:top]


def within_country_percentages(
    results: Sequence[PriceCheckResult],
    countries: Sequence[str],
    tolerance: float = DIFFERENCE_TOLERANCE,
) -> Dict[str, Dict[str, float]]:
    """domain → country → % of requests with an in-country difference.

    The Table 5 statistic: a request counts when two measurement points
    *in the given country* disagree beyond the tolerance.
    """
    totals: Dict[Tuple[str, str], int] = Counter()
    diffs: Dict[Tuple[str, str], int] = Counter()
    for result in results:
        for country in countries:
            rows = result.rows_in_country(country)
            if len(rows) < 2:
                continue
            totals[(result.domain, country)] += 1
            prices = [r.amount_eur for r in rows if r.amount_eur is not None]
            if len(prices) >= 2 and min(prices) > 0:
                if (max(prices) - min(prices)) / min(prices) > tolerance:
                    diffs[(result.domain, country)] += 1
    out: Dict[str, Dict[str, float]] = defaultdict(dict)
    for (domain, country), total in totals.items():
        out[domain][country] = 100.0 * diffs[(domain, country)] / total
    return dict(out)


def peer_bias_distributions(
    results: Sequence[PriceCheckResult],
    country: str,
) -> Dict[str, List[float]]:
    """Per-PPC relative price difference vs the cheapest peer (Fig. 13).

    For every check, each PPC's price in the given country is expressed
    relative to the cheapest same-country measurement of that check; a
    peer that consistently lands high across products is biased.
    """
    per_peer: Dict[str, List[float]] = defaultdict(list)
    for result in results:
        rows = [
            r
            for r in result.rows_in_country(country)
            if r.amount_eur is not None
        ]
        if len(rows) < 2:
            continue
        cheapest = min(r.amount_eur for r in rows)
        if cheapest <= 0:
            continue
        for row in rows:
            if row.kind == "PPC":
                per_peer[row.proxy_id].append(
                    (row.amount_eur - cheapest) / cheapest
                )
    return dict(per_peer)
