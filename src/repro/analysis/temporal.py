"""Temporal price analysis (Figs. 14–15 and Sect. 7.5).

The temporal study checks each product twice a day for 20 days from a
fleet of clean-profile clients; this module turns those observations
into the paper's figures: per-day box statistics, the regression line
annotated on each plot (fit on the highest price observed each day),
the overall revenue delta between the first and last day, and the
average daily fluctuation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.pricediff import BoxStats, box_stats
from repro.core.pricecheck import PriceCheckResult
from repro.net.events import SECONDS_PER_DAY


def daily_series(
    results: Sequence[PriceCheckResult],
) -> Dict[str, Dict[int, List[float]]]:
    """url → day index → all EUR prices observed that day."""
    series: Dict[str, Dict[int, List[float]]] = defaultdict(lambda: defaultdict(list))
    for result in results:
        day = int(result.time // SECONDS_PER_DAY)
        series[result.url][day].extend(result.eur_prices())
    return {url: dict(days) for url, days in series.items()}


@dataclass
class TemporalTrend:
    """One product's panel in Fig. 14/15."""

    url: str
    days: List[int]
    daily_boxes: List[BoxStats]
    slope: float  # €/day, fit on the daily maximum (paper's annotation)
    intercept: float
    direction: str  # "increasing" | "decreasing" | "flat"

    def fitted(self, day: int) -> float:
        return self.intercept + self.slope * day

    @property
    def first_day(self) -> int:
        return self.days[0]

    @property
    def last_day(self) -> int:
        return self.days[-1]


def _fit_line(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2:
        return 0.0, float(y[0]) if len(y) else 0.0
    slope, intercept = np.polyfit(x, y, 1)
    return float(slope), float(intercept)


def trend_for_product(
    url: str,
    day_prices: Dict[int, List[float]],
    flat_epsilon: float = 1e-3,
) -> TemporalTrend:
    """Daily boxes + the regression line on daily maxima."""
    days = sorted(day_prices)
    boxes = [box_stats(day_prices[d]) for d in days]
    slope, intercept = _fit_line(days, [b.maximum for b in boxes])
    if abs(slope) <= flat_epsilon:
        direction = "flat"
    else:
        direction = "increasing" if slope > 0 else "decreasing"
    return TemporalTrend(
        url=url, days=days, daily_boxes=boxes,
        slope=slope, intercept=intercept, direction=direction,
    )


def revenue_delta(trends: Sequence[TemporalTrend]) -> float:
    """Overall € change if every product sold once (Sect. 7.5).

    "Based on the regression line of each product we estimate a measure
    of the overall price difference between the first and the last day
    for all products" — jcpenney ≈ +€452, chegg ≈ +€225 in the paper.
    """
    total = 0.0
    for trend in trends:
        total += trend.fitted(trend.last_day) - trend.fitted(trend.first_day)
    return total


def daily_fluctuation(day_prices: Dict[int, List[float]]) -> float:
    """Mean of (max−min)/min per day — chegg ≈ 8.3 %, jcpenney ≈ 3.7 %."""
    fluctuations = []
    for prices in day_prices.values():
        if len(prices) < 2:
            continue
        low = min(prices)
        if low <= 0:
            continue
        fluctuations.append((max(prices) - low) / low)
    return float(np.mean(fluctuations)) if fluctuations else 0.0


def mean_daily_fluctuation(
    series: Dict[str, Dict[int, List[float]]]
) -> float:
    """Average daily fluctuation across all products of a retailer."""
    values = [daily_fluctuation(day_prices) for day_prices in series.values()]
    values = [v for v in values if v > 0 or True]
    return float(np.mean(values)) if values else 0.0
