"""Analysis: the statistics behind Sects. 6 and 7 of the paper.

* :mod:`repro.analysis.pricediff` — per-domain request/spread statistics
  (Figs. 9/11), max-over-min ratios vs price (Fig. 10), country extremes
  (Table 4), extreme differences (Table 3), in-country percentages
  (Table 5), per-peer bias distributions (Fig. 13);
* :mod:`repro.analysis.stats` — pairwise Kolmogorov–Smirnov tests,
  linear/multi-linear regression with significance, a from-scratch
  random forest with feature importances, ROC-AUC, and the combined
  A/B-vs-PDI-PD verdict of Sect. 7.5;
* :mod:`repro.analysis.temporal` — daily price series, regression trend
  lines, revenue deltas, and daily fluctuation (Figs. 14/15);
* :mod:`repro.analysis.reports` — table/series rendering for the
  benchmark harnesses.
"""

from repro.analysis.pricediff import (
    BoxStats,
    DomainDiffStats,
    box_stats,
    country_extremes,
    domain_diff_stats,
    extreme_differences,
    peer_bias_distributions,
    ratio_vs_min_price,
    within_country_percentages,
)
from repro.analysis.stats import (
    ABTestVerdict,
    RandomForest,
    ab_test_verdict,
    ks_pairwise,
    linear_regression,
    roc_auc,
)
from repro.analysis.temporal import (
    TemporalTrend,
    daily_fluctuation,
    daily_series,
    revenue_delta,
    trend_for_product,
)
from repro.analysis.reports import format_table, format_percent

__all__ = [
    "BoxStats",
    "DomainDiffStats",
    "box_stats",
    "country_extremes",
    "domain_diff_stats",
    "extreme_differences",
    "peer_bias_distributions",
    "ratio_vs_min_price",
    "within_country_percentages",
    "ABTestVerdict",
    "RandomForest",
    "ab_test_verdict",
    "ks_pairwise",
    "linear_regression",
    "roc_auc",
    "TemporalTrend",
    "daily_fluctuation",
    "daily_series",
    "revenue_delta",
    "trend_for_product",
    "format_table",
    "format_percent",
]
