"""Exchange rates, obtained "in real time" by the Measurement servers.

Rates are stored as units of currency per 1 EUR.  The defaults are
calibrated so that the example result page of Fig. 2 reproduces exactly:
``$699 → €617.65``, ``CAD912 → €646.26``, ``ILS2,963 → €665.07``,
``SEK6,283 → €667.37``, ``JPY88,204 → €655.60``, ``CZK18,215 → €662.00``,
``KRW829,075 → €668.29`` and ``NZD997 → €668.28``.

The provider can optionally apply a deterministic daily drift so that
"real time" rates move over the simulated deployment window — this is
one of the benign causes of unclassified price variation the paper notes
(divergent currency converters, Sect. 2).
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, Optional

from repro.net.events import SECONDS_PER_DAY

#: Units per EUR, mid-2016 era, tuned to the Fig. 2 conversions.
DEFAULT_RATES_PER_EUR: Dict[str, float] = {
    "EUR": 1.0,
    "USD": 699.0 / 617.65,       # 1.13171...
    "GBP": 0.790,
    "CHF": 1.090,
    "CAD": 912.0 / 646.26,       # 1.41120...
    "JPY": 88204.0 / 655.60,     # 134.539...
    "CZK": 18215.0 / 662.00,     # 27.5151...
    "KRW": 829075.0 / 668.29,    # 1240.59...
    "NZD": 997.0 / 668.28,       # 1.49189...
    "SEK": 6283.0 / 667.37,      # 9.41459...
    "ILS": 2963.0 / 665.07,      # 4.45517...
    "AUD": 1.520,
    "SGD": 1.550,
    "THB": 39.50,
    "BRL": 3.900,
    "HKD": 8.600,
    "DKK": 7.450,
    "NOK": 9.300,
    "PLN": 4.300,
    "RON": 4.500,
    "HUF": 310.0,
    "BGN": 1.956,
    "HRK": 7.600,
    "MXN": 20.50,
    "ARS": 16.50,
    "CLP": 745.0,
    "COP": 3300.0,
    "INR": 74.00,
    "CNY": 7.300,
    "TWD": 35.50,
    "MYR": 4.500,
    "IDR": 14800.0,
    "PHP": 52.00,
    "ZAR": 16.30,
    "TRY": 3.300,
    "RUB": 73.00,
    "UAH": 28.00,
    "ISK": 135.0,
}


class UnknownCurrencyError(KeyError):
    """The requested currency is not in the rate table."""


class ExchangeRateProvider:
    """Real-time-style exchange-rate source with optional daily drift.

    ``drift`` is the peak relative deviation of a rate over its sinusoidal
    cycle (period 60 simulated days).  With the default ``drift=0.0`` the
    provider is exact and time-invariant, which keeps unit tests and the
    Fig. 2 reproduction deterministic.
    """

    def __init__(
        self,
        rates_per_eur: Optional[Dict[str, float]] = None,
        drift: float = 0.0,
    ) -> None:
        self._rates = dict(DEFAULT_RATES_PER_EUR if rates_per_eur is None else rates_per_eur)
        if "EUR" not in self._rates:
            self._rates["EUR"] = 1.0
        self._drift = drift

    def supported(self) -> bool:
        return bool(self._rates)

    def has_currency(self, code: str) -> bool:
        return code.upper() in self._rates

    def rate_per_eur(self, code: str, at_time: float = 0.0) -> float:
        """Units of ``code`` per one EUR at the given simulated time."""
        code = code.upper()
        try:
            base = self._rates[code]
        except KeyError:
            raise UnknownCurrencyError(code) from None
        if self._drift == 0.0 or code == "EUR":
            return base
        # Deterministic pseudo-random phase per currency keeps the drift
        # reproducible without threading an RNG through every conversion.
        phase = (zlib.crc32(code.encode()) % 360) * math.pi / 180.0
        days = at_time / SECONDS_PER_DAY
        return base * (1.0 + self._drift * math.sin(2.0 * math.pi * days / 60.0 + phase))

    def convert(
        self,
        amount: float,
        from_code: str,
        to_code: str,
        at_time: float = 0.0,
    ) -> float:
        """Convert ``amount`` between two currencies at the given time."""
        if from_code.upper() == to_code.upper():
            return amount
        eur = amount / self.rate_per_eur(from_code, at_time)
        return eur * self.rate_per_eur(to_code, at_time)

    def to_eur(self, amount: float, from_code: str, at_time: float = 0.0) -> float:
        return self.convert(amount, from_code, "EUR", at_time)
