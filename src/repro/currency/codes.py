"""ISO 4217 currency metadata, symbols, and retailer custom notations.

The paper distinguishes three ways e-retailers present currencies
(Sect. 3.5): the 3-letter ISO notation (``USD``), custom notations
(``US$``), and bare symbols (``$``) which may be ambiguous across
currencies.  The tables below are the "custom currency list that we
empirically built" equivalent for the simulated internet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Currency:
    """One supported currency."""

    code: str
    name: str
    symbol: str
    decimals: int = 2  # JPY/KRW-style currencies use 0


_CURRENCY_ROWS = [
    ("EUR", "Euro", "€", 2),
    ("USD", "US Dollar", "$", 2),
    ("GBP", "Pound Sterling", "£", 2),
    ("CHF", "Swiss Franc", "CHF", 2),
    ("CAD", "Canadian Dollar", "$", 2),
    ("JPY", "Japanese Yen", "¥", 0),
    ("CZK", "Czech Koruna", "Kč", 2),
    ("KRW", "South Korean Won", "₩", 0),
    ("NZD", "New Zealand Dollar", "$", 2),
    ("SEK", "Swedish Krona", "kr", 2),
    ("ILS", "Israeli New Shekel", "₪", 2),
    ("AUD", "Australian Dollar", "$", 2),
    ("SGD", "Singapore Dollar", "$", 2),
    ("THB", "Thai Baht", "฿", 2),
    ("BRL", "Brazilian Real", "R$", 2),
    ("HKD", "Hong Kong Dollar", "$", 2),
    ("DKK", "Danish Krone", "kr", 2),
    ("NOK", "Norwegian Krone", "kr", 2),
    ("PLN", "Polish Zloty", "zł", 2),
    ("RON", "Romanian Leu", "lei", 2),
    ("HUF", "Hungarian Forint", "Ft", 0),
    ("BGN", "Bulgarian Lev", "лв", 2),
    ("HRK", "Croatian Kuna", "kn", 2),
    ("MXN", "Mexican Peso", "$", 2),
    ("ARS", "Argentine Peso", "$", 2),
    ("CLP", "Chilean Peso", "$", 0),
    ("COP", "Colombian Peso", "$", 0),
    ("INR", "Indian Rupee", "₹", 2),
    ("CNY", "Chinese Yuan", "¥", 2),
    ("TWD", "New Taiwan Dollar", "$", 0),
    ("MYR", "Malaysian Ringgit", "RM", 2),
    ("IDR", "Indonesian Rupiah", "Rp", 0),
    ("PHP", "Philippine Peso", "₱", 2),
    ("ZAR", "South African Rand", "R", 2),
    ("TRY", "Turkish Lira", "₺", 2),
    ("RUB", "Russian Ruble", "₽", 2),
    ("UAH", "Ukrainian Hryvnia", "₴", 2),
    ("ISK", "Icelandic Krona", "kr", 0),
]

CURRENCIES: Dict[str, Currency] = {
    code: Currency(code, name, symbol, decimals)
    for code, name, symbol, decimals in _CURRENCY_ROWS
}

#: Custom retailer notations → ISO code (case (b) of the detection
#: algorithm).  These resolve unambiguously.
CUSTOM_NOTATIONS: Dict[str, str] = {
    "US$": "USD",
    "U$S": "USD",
    "C$": "CAD",
    "CA$": "CAD",
    "CAD$": "CAD",
    "A$": "AUD",
    "AU$": "AUD",
    "NZ$": "NZD",
    "HK$": "HKD",
    "S$": "SGD",
    "SG$": "SGD",
    "R$": "BRL",
    "NT$": "TWD",
    "MX$": "MXN",
    "AR$": "ARS",
    "RM": "MYR",
    "Rp": "IDR",
    "Kč": "CZK",
    "zł": "PLN",
    "lei": "RON",
    "Ft": "HUF",
    "kn": "HRK",
}

#: Bare symbols that map to a *unique* currency (case (c), high match).
UNIQUE_SYMBOLS: Dict[str, str] = {
    "€": "EUR",
    "£": "GBP",
    "₩": "KRW",
    "₪": "ILS",
    "฿": "THB",
    "₹": "INR",
    "₱": "PHP",
    "₺": "TRY",
    "₽": "RUB",
    "₴": "UAH",
    "лв": "BGN",
}

#: Bare symbols shared by several currencies (case (c), low confidence).
#: The first entry is the detector's default guess — e.g. the paper's
#: result page shows ``$699`` converted as USD with a red asterisk.
AMBIGUOUS_SYMBOLS: Dict[str, Tuple[str, ...]] = {
    "$": ("USD", "CAD", "AUD", "NZD", "SGD", "HKD", "MXN", "ARS", "CLP", "COP", "TWD"),
    "¥": ("JPY", "CNY"),
    "kr": ("SEK", "NOK", "DKK", "ISK"),
    "R": ("ZAR",),
    "CHF": ("CHF",),
}


def currency_for_code(code: str) -> Optional[Currency]:
    """Look up a currency by its (upper-cased) ISO code."""
    return CURRENCIES.get(code.upper())
