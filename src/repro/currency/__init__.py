"""Currency engine: ISO codes, notations, exchange rates, detection.

Reproduces Sect. 3.5 of the paper ("The currency detection problem"): a
three-part algorithm that normalizes the selected text, identifies the
currency through 3-letter codes, custom retailer notations, or bare
symbols (flagged low-confidence when ambiguous), and extracts the numeric
amount — including the letters/digits split for concatenated words such
as ``EUR654``.
"""

from repro.currency.codes import (
    AMBIGUOUS_SYMBOLS,
    CURRENCIES,
    CUSTOM_NOTATIONS,
    Currency,
    currency_for_code,
)
from repro.currency.rates import ExchangeRateProvider
from repro.currency.detect import (
    Confidence,
    CurrencyDetectionError,
    DetectedPrice,
    detect_price,
    format_price,
)

__all__ = [
    "AMBIGUOUS_SYMBOLS",
    "CURRENCIES",
    "CUSTOM_NOTATIONS",
    "Currency",
    "currency_for_code",
    "ExchangeRateProvider",
    "Confidence",
    "CurrencyDetectionError",
    "DetectedPrice",
    "detect_price",
    "format_price",
]
