"""The currency detection and conversion algorithm of Sect. 3.5.

The Measurement server receives the raw price string selected by the
user (or located via the Tags Path on a remote page) and must produce a
``(amount, currency, confidence)`` triple.  The algorithm has three
parts, mirroring the paper:

1. **Normalization** — newline characters and repeated spaces are
   collapsed.
2. **Currency detection** — in strict order: (a) 3-letter ISO notation
   (``USD``); (b) custom retailer notation (``US$``); (c) bare symbol
   (``$``).  Symbols shared by several currencies yield the detector's
   best guess with *low confidence* — the result page marks these with a
   red asterisk (Fig. 2).  If nothing matches, the currency is unknown
   and the price is returned unconverted.
3. **Amount extraction** — digits are pulled out handling thousand /
   decimal separators in both anglophone (``1,234.56``) and continental
   (``1.234,56`` / ``18 215``) conventions.  If the selected string is a
   concatenation of letters and digits (``EUR654``) it is split into
   letter-words and digit-words and part 2 is repeated — exactly the
   retry described in the paper.

Input sanity checks reproduce the paper's request constraints: the
selected string must be at most 25 characters and contain at least one
digit (a guard against code-injection through the price field).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from repro.currency.codes import (
    AMBIGUOUS_SYMBOLS,
    CURRENCIES,
    CUSTOM_NOTATIONS,
    UNIQUE_SYMBOLS,
)

MAX_SELECTION_LENGTH = 25


class CurrencyDetectionError(ValueError):
    """The selected text cannot be accepted as a price selection."""


class Confidence(enum.Enum):
    """Detector confidence in the currency assignment."""

    HIGH = "high"
    LOW = "low"  # ambiguous symbol: rendered with a red asterisk
    UNKNOWN = "unknown"  # no currency notation recognized


@dataclass(frozen=True)
class DetectedPrice:
    """Result of running the detection algorithm on a selected string."""

    original: str
    amount: Optional[float]
    currency: Optional[str]
    confidence: Confidence
    candidates: Tuple[str, ...] = ()

    @property
    def needs_double_check(self) -> bool:
        """True when the result page should show the red asterisk."""
        return self.confidence is Confidence.LOW


_WS_RE = re.compile(r"\s+")
_LETTER_RUN_RE = re.compile(r"[A-Za-z]+")
_INJECTION_RE = re.compile(r"[<>;{}\\]|script", re.IGNORECASE)

# -- notation tables compiled once at import --------------------------------
#
# The detector used to re-sort each notation dict and probe the text with
# ``str.find`` per notation on every call.  Each tier now compiles to one
# zero-width overlapping-alternation regex ``(?=(n1|n2|…))`` with the
# alternatives in the tier's priority order (longest first, dict order on
# ties — exactly what the per-call ``sorted`` produced) plus a rank table.
# One scan collects every notation occurrence (the lookahead makes matches
# overlap-safe); the minimum-rank capture is the tier's winner.  At the
# true winner's position the alternation could only prefer a *higher*
# priority notation — which would itself be present and contradict the
# winner being the highest-priority notation in the text — so the scan
# returns exactly the notation the legacy priority loop found.


def _compile_tier(notations) -> Tuple["re.Pattern[str]", dict]:
    ordered = sorted(notations, key=len, reverse=True)
    pattern = re.compile(
        "(?=(" + "|".join(re.escape(n) for n in ordered) + "))"
    )
    return pattern, {n: i for i, n in enumerate(ordered)}


_CUSTOM_RE, _CUSTOM_RANK = _compile_tier(CUSTOM_NOTATIONS)
_UNIQUE_RE, _UNIQUE_RANK = _compile_tier(UNIQUE_SYMBOLS)
_AMBIGUOUS_RE, _AMBIGUOUS_RANK = _compile_tier(AMBIGUOUS_SYMBOLS)

#: an ISO token is a maximal letter run of exactly three letters — the
#: lookarounds reject runs that continue on either side, so this visits
#: the same tokens, in the same order, as filtering ``_LETTER_RUN_RE``
#: matches down to ``len == 3``.
_ISO_RE = re.compile(r"(?<![A-Za-z])[A-Za-z]{3}(?![A-Za-z])")


def _tier_find(text: str, pattern, rank) -> Optional[str]:
    """Highest-priority notation of one tier present in ``text``."""
    best = None
    best_rank = len(rank)
    for match in pattern.finditer(text):
        r = rank[match.group(1)]
        if r < best_rank:
            best, best_rank = match.group(1), r
            if r == 0:
                break
    return best


def _normalize(text: str) -> str:
    """Part 1: drop newlines and collapse repeated whitespace."""
    return _WS_RE.sub(" ", text).strip()


def _validate(text: str) -> None:
    if len(text) > MAX_SELECTION_LENGTH:
        raise CurrencyDetectionError(
            f"selection longer than {MAX_SELECTION_LENGTH} characters: {text!r}"
        )
    if not any(ch.isdigit() for ch in text):
        raise CurrencyDetectionError(f"selection contains no digit: {text!r}")
    if _INJECTION_RE.search(text):
        raise CurrencyDetectionError(f"selection rejected by input sanitization: {text!r}")


def _detect_currency(text: str) -> Tuple[Optional[str], Confidence, Tuple[str, ...], str]:
    """Part 2: return (code, confidence, candidates, text_without_token)."""
    # (a) 3-letter ISO notation.  Exact-length letter runs handle both
    # "654 USD" and the concatenated "EUR654" (the paper's part-3 retry
    # folds in here).
    for match in _ISO_RE.finditer(text):
        token = match.group(0).upper()
        if token in CURRENCIES:
            remainder = text[: match.start()] + " " + text[match.end():]
            return token, Confidence.HIGH, (token,), remainder

    # (b) custom retailer notation, longest first so "US$" wins over "$".
    notation = _tier_find(text, _CUSTOM_RE, _CUSTOM_RANK)
    if notation is not None:
        idx = text.find(notation)
        code = CUSTOM_NOTATIONS[notation]
        remainder = text[:idx] + " " + text[idx + len(notation):]
        return code, Confidence.HIGH, (code,), remainder

    # (c) bare symbols — unambiguous ones first, then ambiguous ones.
    symbol = _tier_find(text, _UNIQUE_RE, _UNIQUE_RANK)
    if symbol is not None:
        idx = text.find(symbol)
        code = UNIQUE_SYMBOLS[symbol]
        remainder = text[:idx] + " " + text[idx + len(symbol):]
        return code, Confidence.HIGH, (code,), remainder
    symbol = _tier_find(text, _AMBIGUOUS_RE, _AMBIGUOUS_RANK)
    if symbol is not None:
        idx = text.find(symbol)
        candidates = AMBIGUOUS_SYMBOLS[symbol]
        remainder = text[:idx] + " " + text[idx + len(symbol):]
        confidence = Confidence.HIGH if len(candidates) == 1 else Confidence.LOW
        return candidates[0], confidence, candidates, remainder

    return None, Confidence.UNKNOWN, (), text


_GROUP_SEP_RE = re.compile(r"(?<=\d)[\s'](?=\d)")
_AMOUNT_RE = re.compile(r"\d[\d.,]*")
_LETTER_DIGIT_SPLIT_RE = re.compile(r"(?<=[A-Za-z])(?=\d)|(?<=\d)(?=[A-Za-z])")


def parse_amount(text: str) -> Optional[float]:
    """Part 3: extract the numeric amount from a currency-free string.

    Handles ``1,234.56``, ``1.234,56``, ``18 215``, ``1'234``, bare
    integers, and single-separator cases where the separator role must be
    guessed (two or fewer trailing digits → decimal; otherwise grouping).
    """
    text = _GROUP_SEP_RE.sub("", text)
    match = _AMOUNT_RE.search(text)
    if match is None:
        return None
    token = match.group(0).rstrip(".,")
    has_dot, has_comma = "." in token, "," in token
    if has_dot and has_comma:
        decimal_sep = "." if token.rfind(".") > token.rfind(",") else ","
        group_sep = "," if decimal_sep == "." else "."
        token = token.replace(group_sep, "").replace(decimal_sep, ".")
    elif has_dot or has_comma:
        sep = "." if has_dot else ","
        parts = token.split(sep)
        if len(parts) > 2:
            token = token.replace(sep, "")  # repeated separator: grouping
        else:
            head, tail = parts
            if len(tail) <= 2 and head != "":
                token = head + "." + tail  # decimal separator
            else:
                token = head + tail  # grouping ("2,963", ",500" edge)
    try:
        return float(token)
    except ValueError:
        return None


@lru_cache(maxsize=4096)
def detect_price(text: str) -> DetectedPrice:
    """Run the full 3-part detection algorithm on a selected string.

    Pure function of its input, so results are memoized: a sweep that
    checks the same product from many vantages detects each distinct
    price string once.  (:class:`DetectedPrice` is frozen, so sharing
    the instance is safe; rejections raise and are never cached.)
    """
    normalized = _normalize(text)
    _validate(normalized)
    code, confidence, candidates, remainder = _detect_currency(normalized)
    amount = parse_amount(remainder)
    if amount is None:
        # Concatenated letters/digits retry (part 3 of the paper): split
        # the single word into letter words and digit words.
        split = _LETTER_DIGIT_SPLIT_RE.sub(" ", normalized)
        code, confidence, candidates, remainder = _detect_currency(split)
        amount = parse_amount(remainder)
    return DetectedPrice(
        original=text,
        amount=amount,
        currency=code,
        confidence=confidence,
        candidates=tuple(candidates),
    )


def _group_thousands(integral: str, sep: str = ",") -> str:
    out = []
    for i, ch in enumerate(reversed(integral)):
        if i and i % 3 == 0:
            out.append(sep)
        out.append(ch)
    return "".join(reversed(out))


def format_price(
    amount: float,
    code: str,
    style: str = "symbol",
    grouping: bool = True,
    decimals: Optional[int] = None,
) -> str:
    """Render an amount the way a retailer would (inverse of detection).

    Styles:

    * ``iso_tight``   — ``EUR654`` (code glued to the number, Fig. 2)
    * ``iso_space``   — ``654.00 USD``
    * ``symbol``      — ``$699`` / ``ILS2,963``-style symbol prefix
    * ``symbol_suffix`` — ``6,283 kr``
    * ``continental`` — ``1.234,56 €`` (dot grouping, comma decimals)
    * ``custom``      — retailer notation, e.g. ``US$699``
    """
    currency = CURRENCIES[code.upper()]
    n_dec = currency.decimals if decimals is None else decimals
    quantized = f"{amount:.{n_dec}f}"
    if "." in quantized:
        integral, frac = quantized.split(".")
    else:
        integral, frac = quantized, ""
    if grouping:
        integral = _group_thousands(integral)
    number = integral + ("." + frac if frac else "")

    if style == "iso_tight":
        return f"{currency.code}{number}"
    if style == "iso_space":
        return f"{number} {currency.code}"
    if style == "symbol":
        return f"{currency.symbol}{number}"
    if style == "symbol_suffix":
        return f"{number} {currency.symbol}"
    if style == "continental":
        cont = integral.replace(",", ".") + ("," + frac if frac else "")
        return f"{cont} {currency.symbol}"
    if style == "custom":
        for notation, mapped in CUSTOM_NOTATIONS.items():
            if mapped == currency.code:
                return f"{notation}{number}"
        return f"{currency.symbol}{number}"
    raise ValueError(f"unknown price style {style!r}")
